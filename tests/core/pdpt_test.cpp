#include "core/pdpt.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

ProtectionConfig DefaultProt() { return ProtectionConfig{}; }

PdpTable MakeTable(std::uint32_t nasc = 4) {
  return PdpTable(DefaultProt(), nasc);
}

TEST(Pdpt, IndexingIsStableAndInRange) {
  PdpTable t = MakeTable();
  for (Pc pc = 0; pc < 1000; ++pc) {
    const std::uint32_t id = t.IndexOf(pc);
    EXPECT_LT(id, t.size());
    EXPECT_EQ(id, t.IndexOf(pc));
  }
}

TEST(Pdpt, InitialPdsAreZero) {
  PdpTable t = MakeTable();
  for (std::uint32_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.Pd(i), 0u);
}

TEST(Pdpt, StepAdjustmentBuckets) {
  // Paper §4.2: HitVTA compared against 4x, 2x, 1x and 1/2x HitTDA;
  // adjustments 4*Nasc, 2*Nasc, Nasc, Nasc/2, upper limit 4*Nasc.
  PdpTable t = MakeTable(4);
  EXPECT_EQ(t.StepAdjustment(40, 10), 16u);   // >= 4x
  EXPECT_EQ(t.StepAdjustment(39, 10), 8u);    // >= 2x
  EXPECT_EQ(t.StepAdjustment(20, 10), 8u);    // == 2x
  EXPECT_EQ(t.StepAdjustment(19, 10), 4u);    // >= 1x
  EXPECT_EQ(t.StepAdjustment(10, 10), 4u);    // == 1x
  EXPECT_EQ(t.StepAdjustment(9, 10), 2u);     // >= 1/2 x -> Nasc/2
  EXPECT_EQ(t.StepAdjustment(5, 10), 2u);     // == 1/2 x
  EXPECT_EQ(t.StepAdjustment(4, 10), 0u);     // below 1/2 x
  EXPECT_EQ(t.StepAdjustment(0, 10), 0u);     // no VTA hits
  // No TDA hits at all: maximally under-protected.
  EXPECT_EQ(t.StepAdjustment(1, 0), 16u);
}

TEST(Pdpt, IncreasePathRaisesPerInstructionPds) {
  PdpTable t = MakeTable(4);
  const std::uint32_t hot = 3;
  const std::uint32_t cold = 9;
  // hot: VTA-dominated; cold: nothing.
  for (int i = 0; i < 10; ++i) t.CreditVtaHit(hot);
  t.CreditTdaHit(hot);
  EXPECT_EQ(t.EndSample(), PdpTable::UpdatePath::kIncrease);
  EXPECT_EQ(t.Pd(hot), 15u);  // 4*Nasc = 16 clamped to pd_max
  EXPECT_EQ(t.Pd(cold), 0u);
}

TEST(Pdpt, IncreaseClampsAtPdMax) {
  PdpTable t = MakeTable(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) t.CreditVtaHit(0);
    t.EndSample();
  }
  EXPECT_EQ(t.Pd(0), 15u);
}

TEST(Pdpt, DecreasePathLowersAllPds) {
  PdpTable t = MakeTable(4);
  for (int i = 0; i < 8; ++i) t.CreditVtaHit(0);
  t.EndSample();
  ASSERT_EQ(t.Pd(0), 15u);
  // TDA-dominated sample: global VTA < TDA/2.
  for (int i = 0; i < 10; ++i) t.CreditTdaHit(5);
  EXPECT_EQ(t.EndSample(), PdpTable::UpdatePath::kDecrease);
  EXPECT_EQ(t.Pd(0), 11u);  // -Nasc
  // Decrease applies to every entry, clamped at zero.
  EXPECT_EQ(t.Pd(5), 0u);
}

TEST(Pdpt, HoldRegionKeepsPds) {
  PdpTable t = MakeTable(4);
  for (int i = 0; i < 8; ++i) t.CreditVtaHit(0);
  t.EndSample();
  const std::uint32_t before = t.Pd(0);
  // VTA == TDA: not an increase (needs >), not a decrease (needs < 1/2).
  for (int i = 0; i < 6; ++i) {
    t.CreditTdaHit(1);
    t.CreditVtaHit(2);
  }
  EXPECT_EQ(t.EndSample(), PdpTable::UpdatePath::kHold);
  EXPECT_EQ(t.Pd(0), before);
}

TEST(Pdpt, BoundaryExactlyHalfIsHold) {
  PdpTable t = MakeTable(4);
  // VTA = 5, TDA = 10: "less than 1/2" is false -> hold.
  for (int i = 0; i < 10; ++i) t.CreditTdaHit(0);
  for (int i = 0; i < 5; ++i) t.CreditVtaHit(0);
  EXPECT_EQ(t.EndSample(), PdpTable::UpdatePath::kHold);
}

TEST(Pdpt, SampleResetsCounters) {
  PdpTable t = MakeTable();
  t.CreditTdaHit(0);
  t.CreditVtaHit(1);
  EXPECT_EQ(t.global_tda_hits(), 1u);
  EXPECT_EQ(t.global_vta_hits(), 1u);
  t.EndSample();
  EXPECT_EQ(t.global_tda_hits(), 0u);
  EXPECT_EQ(t.global_vta_hits(), 0u);
  EXPECT_EQ(t.tda_hits(0), 0u);
  EXPECT_EQ(t.vta_hits(1), 0u);
}

TEST(Pdpt, PerEntryCountersSaturateAtPaperWidths) {
  PdpTable t = MakeTable();
  for (int i = 0; i < 2000; ++i) {
    t.CreditTdaHit(0);
    t.CreditVtaHit(0);
  }
  EXPECT_EQ(t.tda_hits(0), 255u);   // 8 bits
  EXPECT_EQ(t.vta_hits(0), 1023u);  // 10 bits
  // Global counters are exact (used for the path decision).
  EXPECT_EQ(t.global_tda_hits(), 2000u);
}

TEST(Pdpt, SampleStatisticsTracked) {
  PdpTable t = MakeTable();
  for (int i = 0; i < 4; ++i) t.CreditVtaHit(0);
  t.EndSample();
  for (int i = 0; i < 4; ++i) t.CreditTdaHit(0);
  t.EndSample();
  t.EndSample();  // empty: hold
  EXPECT_EQ(t.samples_taken, 3u);
  EXPECT_EQ(t.increase_samples, 1u);
  EXPECT_EQ(t.decrease_samples, 1u);
}

TEST(Pdpt, ClearResetsPdsAndCounters) {
  PdpTable t = MakeTable();
  for (int i = 0; i < 4; ++i) t.CreditVtaHit(0);
  t.EndSample();
  t.Clear();
  EXPECT_EQ(t.Pd(0), 0u);
  EXPECT_EQ(t.global_vta_hits(), 0u);
}

TEST(Pdpt, SingleEntryTableModelsGlobalProtection) {
  ProtectionConfig prot;
  prot.pdpt_entries = 1;
  prot.insn_id_bits = 0;
  PdpTable t(prot, 4);
  // Every PC maps to entry 0.
  for (Pc pc = 0; pc < 500; ++pc) EXPECT_EQ(t.IndexOf(pc), 0u);
}

// --- SampleWindow ---

TEST(SampleWindow, EndsAfterConfiguredAccesses) {
  ProtectionConfig prot;
  prot.sample_accesses = 5;
  prot.sample_max_cycles = 1000000;
  SampleWindow w(prot);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(w.OnAccess(i));
  EXPECT_TRUE(w.OnAccess(4));
  w.Restart(5);
  EXPECT_FALSE(w.OnAccess(6));
}

TEST(SampleWindow, EndsAfterCycleCapForSparseAccesses) {
  // Paper §4.1.4: CS applications with few loads must not sample forever.
  ProtectionConfig prot;
  prot.sample_accesses = 200;
  prot.sample_max_cycles = 100;
  SampleWindow w(prot);
  EXPECT_FALSE(w.OnAccess(0));
  EXPECT_TRUE(w.OnAccess(150));  // cycle cap elapsed
}

TEST(SampleWindow, PaperDefaultIs200Accesses) {
  ProtectionConfig prot;
  SampleWindow w(prot);
  for (std::uint32_t i = 0; i < 199; ++i) {
    EXPECT_FALSE(w.OnAccess(i)) << i;
  }
  EXPECT_TRUE(w.OnAccess(199));
}

}  // namespace
}  // namespace dlpsim
