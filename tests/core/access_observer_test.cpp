// Pins the AccessObserver contract (called once per *completed* access
// with the pre-policy TDA outcome, never on kReservationFail) and the
// ToString(AccessResult) names the exporters rely on.
#include "cache/observer.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/l1d_cache.h"

namespace dlpsim {
namespace {

L1DConfig SmallConfig(PolicyKind kind = PolicyKind::kBaseline) {
  L1DConfig cfg;
  cfg.geom.sets = 2;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.mshr_max_merged = 2;
  cfg.miss_queue_entries = 4;
  cfg.policy = kind;
  return cfg;
}

MemAccess Load(Addr addr, Pc pc = 0, MshrToken token = 1) {
  return MemAccess{addr, AccessType::kLoad, pc, token};
}

MemAccess Store(Addr addr, Pc pc = 0) {
  return MemAccess{addr, AccessType::kStore, pc, 0};
}

struct Seen {
  std::uint32_t set;
  Addr block;
  Pc pc;
  AccessType type;
  bool hit;
};

class RecordingObserver : public AccessObserver {
 public:
  void OnAccess(std::uint32_t set, Addr block, Pc pc, AccessType type,
                bool hit) override {
    seen.push_back({set, block, pc, type, hit});
  }
  std::vector<Seen> seen;
};

TEST(AccessResultNames, AllSixValuesPinned) {
  EXPECT_STREQ(ToString(AccessResult::kHit), "hit");
  EXPECT_STREQ(ToString(AccessResult::kMissIssued), "miss_issued");
  EXPECT_STREQ(ToString(AccessResult::kMissMerged), "miss_merged");
  EXPECT_STREQ(ToString(AccessResult::kBypassed), "bypassed");
  EXPECT_STREQ(ToString(AccessResult::kStoreSent), "store_sent");
  EXPECT_STREQ(ToString(AccessResult::kReservationFail), "reservation_fail");
}

TEST(AccessObserver, SeesPrePolicyOutcomeOncePerAccess) {
  L1DCache cache(SmallConfig());
  RecordingObserver obs;
  cache.SetObserver(&obs);

  // Cold miss: observed as miss with the access identity intact.
  EXPECT_EQ(cache.Access(Load(0, 7), 0), AccessResult::kMissIssued);
  ASSERT_EQ(obs.seen.size(), 1u);
  EXPECT_FALSE(obs.seen[0].hit);
  EXPECT_EQ(obs.seen[0].block, 0u);
  EXPECT_EQ(obs.seen[0].pc, 7u);
  EXPECT_EQ(obs.seen[0].type, AccessType::kLoad);

  // Merged miss is still one observed (non-hit) access.
  EXPECT_EQ(cache.Access(Load(0, 7, 2), 1), AccessResult::kMissMerged);
  ASSERT_EQ(obs.seen.size(), 2u);
  EXPECT_FALSE(obs.seen[1].hit);

  std::vector<MshrToken> woken;
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (!out.write) {
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }

  // Filled-line hit: observed with hit = true.
  EXPECT_EQ(cache.Access(Load(0, 7), 2), AccessResult::kHit);
  ASSERT_EQ(obs.seen.size(), 3u);
  EXPECT_TRUE(obs.seen[2].hit);
}

TEST(AccessObserver, NotCalledOnReservationFail) {
  L1DCache cache(SmallConfig());
  RecordingObserver obs;
  cache.SetObserver(&obs);

  ASSERT_EQ(cache.Access(Load(0, 0, 1), 0), AccessResult::kMissIssued);
  ASSERT_EQ(cache.Access(Load(0, 0, 2), 1), AccessResult::kMissMerged);
  // Merge limit (2) reached: baseline stalls, and the failed access must
  // not reach the observer (the LD/ST unit will retry it).
  ASSERT_EQ(cache.Access(Load(0, 0, 3), 2), AccessResult::kReservationFail);
  EXPECT_EQ(obs.seen.size(), 2u);

  // The retry that eventually completes is observed exactly once.
  std::vector<MshrToken> woken;
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (!out.write) {
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }
  EXPECT_EQ(cache.Access(Load(0, 0, 3), 3), AccessResult::kHit);
  EXPECT_EQ(obs.seen.size(), 3u);
}

TEST(AccessObserver, BypassedLoadIsStillObserved) {
  // Under stall-bypass, a miss with no insertable victim goes around the
  // cache -- but the access still happened and must be observed.
  L1DCache cache(SmallConfig(PolicyKind::kStallBypass));
  RecordingObserver obs;
  cache.SetObserver(&obs);

  // Fill both ways of set 0, then saturate the MSHRs so the next distinct
  // miss converts to a resource bypass.
  std::vector<MshrToken> woken;
  auto drain = [&] {
    while (cache.HasOutgoing()) {
      const L1DOutgoing out = cache.PopOutgoing();
      if (!out.write) {
        cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
      }
    }
  };
  ASSERT_EQ(cache.Access(Load(0 * 256), 0), AccessResult::kMissIssued);
  ASSERT_EQ(cache.Access(Load(1 * 256), 1), AccessResult::kMissIssued);
  drain();
  obs.seen.clear();

  // Two distinct misses reserve both ways of set 0...
  ASSERT_EQ(cache.Access(Load(2 * 256, 0, 11), 2), AccessResult::kMissIssued);
  ASSERT_EQ(cache.Access(Load(3 * 256, 0, 12), 3), AccessResult::kMissIssued);
  // ...so this distinct miss finds no victim and bypasses.
  ASSERT_EQ(cache.Access(Load(4 * 256, 0, 13), 4), AccessResult::kBypassed);
  ASSERT_EQ(obs.seen.size(), 3u);
  EXPECT_FALSE(obs.seen.back().hit);
  EXPECT_EQ(obs.seen.back().block, 4u * 2);  // 256B = 2 x 128B lines
}

TEST(AccessObserver, StoreHitFlagReflectsTdaPresence) {
  L1DCache cache(SmallConfig());
  RecordingObserver obs;
  cache.SetObserver(&obs);

  // Store miss: write-through, observed as non-hit.
  EXPECT_EQ(cache.Access(Store(0), 0), AccessResult::kStoreSent);
  ASSERT_EQ(obs.seen.size(), 1u);
  EXPECT_EQ(obs.seen[0].type, AccessType::kStore);
  EXPECT_FALSE(obs.seen[0].hit);

  // Load the line in, then store to it: observed as a (store) hit.
  std::vector<MshrToken> woken;
  cache.Access(Load(0), 1);
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (!out.write) {
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }
  obs.seen.clear();
  EXPECT_EQ(cache.Access(Store(0), 2), AccessResult::kStoreSent);
  ASSERT_EQ(obs.seen.size(), 1u);
  EXPECT_TRUE(obs.seen[0].hit);
}

}  // namespace
}  // namespace dlpsim
