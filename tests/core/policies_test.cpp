#include "core/policies.h"

#include <gtest/gtest.h>

#include "cache/tag_array.h"

namespace dlpsim {
namespace {

L1DConfig SmallConfig(PolicyKind kind) {
  L1DConfig cfg;
  cfg.geom.sets = 4;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.policy = kind;
  return cfg;
}

void FillWay(TagArray& tda, std::uint32_t set, std::uint32_t way, Addr block) {
  tda.Reserve(set, way, block, 0);
  tda.Fill(set, block);
}

TEST(MakePolicy, ProducesRequestedKinds) {
  for (PolicyKind k :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    auto p = MakePolicy(SmallConfig(k));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), k);
  }
}

TEST(BaselinePolicy, LruVictimAndStallWhenAllReserved) {
  auto cfg = SmallConfig(PolicyKind::kBaseline);
  TagArray tda(cfg.geom);
  BaselinePolicy policy;

  // Empty set: invalid way chosen.
  EXPECT_EQ(policy.PickVictim(tda, 0).kind, VictimChoice::Kind::kWay);

  FillWay(tda, 0, 0, 0);
  FillWay(tda, 0, 1, 4);
  const VictimChoice c = policy.PickVictim(tda, 0);
  ASSERT_EQ(c.kind, VictimChoice::Kind::kWay);
  EXPECT_EQ(c.way, 0u);  // LRU

  // All reserved: stall.
  tda.Reserve(1, 0, 1, 0);
  tda.Reserve(1, 1, 5, 0);
  EXPECT_EQ(policy.PickVictim(tda, 1).kind, VictimChoice::Kind::kStall);
  EXPECT_FALSE(policy.BypassOnResourceStall());
}

TEST(StallBypassPolicy, BypassesInsteadOfStalling) {
  auto cfg = SmallConfig(PolicyKind::kStallBypass);
  TagArray tda(cfg.geom);
  StallBypassPolicy policy;
  tda.Reserve(0, 0, 0, 0);
  tda.Reserve(0, 1, 4, 0);
  EXPECT_EQ(policy.PickVictim(tda, 0).kind, VictimChoice::Kind::kBypass);
  EXPECT_TRUE(policy.BypassOnResourceStall());
}

class DlpPolicyTest : public ::testing::Test {
 protected:
  DlpPolicyTest()
      : cfg_(SmallConfig(PolicyKind::kDlp)), tda_(cfg_.geom), policy_(cfg_) {}

  L1DConfig cfg_;
  TagArray tda_;
  DlpPolicy policy_;
};

TEST_F(DlpPolicyTest, SetQueryDecrementsProtectedLife) {
  FillWay(tda_, 0, 0, 0);
  tda_.At(0, 0).protected_life = 3;
  policy_.OnSetQuery(tda_.SetView(0));
  EXPECT_EQ(tda_.At(0, 0).protected_life, 2u);
  policy_.OnSetQuery(tda_.SetView(0));
  policy_.OnSetQuery(tda_.SetView(0));
  policy_.OnSetQuery(tda_.SetView(0));  // saturates at 0
  EXPECT_EQ(tda_.At(0, 0).protected_life, 0u);
}

TEST_F(DlpPolicyTest, HitTransfersOwnershipAndRefreshesPl) {
  // Paper §4.1.1: a hit is credited to the *previous* owner instruction,
  // then ownership moves to the hitting instruction.
  FillWay(tda_, 0, 0, 0);
  CacheLine& line = tda_.At(0, 0);
  line.insn_id = 5;

  const Pc pc = 0x40;
  const std::uint32_t id = policy_.pdpt()->IndexOf(pc);
  policy_.OnLoadHit(line, pc);
  EXPECT_EQ(policy_.pdpt()->tda_hits(5), 1u);  // credited to old owner
  EXPECT_EQ(line.insn_id, id);                 // ownership transferred
  EXPECT_EQ(line.protected_life, policy_.pdpt()->Pd(id));

  // A second hit from another PC credits `id`, not 5.
  const Pc pc2 = 0x41;
  policy_.OnLoadHit(line, pc2);
  EXPECT_EQ(policy_.pdpt()->tda_hits(id), id == 5 ? 2u : 1u);
  EXPECT_EQ(line.insn_id, policy_.pdpt()->IndexOf(pc2));
}

TEST_F(DlpPolicyTest, EvictionFeedsVtaAndMissConsumesIt) {
  FillWay(tda_, 2, 0, 42);
  CacheLine& line = tda_.At(2, 0);
  line.insn_id = 9;
  policy_.OnEviction(2, line);
  EXPECT_TRUE(policy_.vta()->Contains(2, 42));

  // A later miss to the same block credits insn 9 in the PDPT.
  policy_.OnLoadMiss(2, 42, /*pc=*/0);
  EXPECT_EQ(policy_.pdpt()->vta_hits(9), 1u);
  EXPECT_FALSE(policy_.vta()->Contains(2, 42));  // consumed
}

TEST_F(DlpPolicyTest, ReserveStampsInsnIdAndPd) {
  const Pc pc = 0x80;
  tda_.Reserve(0, 0, 7, pc);
  policy_.OnReserve(tda_.At(0, 0), pc);
  EXPECT_EQ(tda_.At(0, 0).insn_id, policy_.pdpt()->IndexOf(pc));
  EXPECT_EQ(tda_.At(0, 0).protected_life, policy_.PdForPc(pc));
}

TEST_F(DlpPolicyTest, VictimSelectionRespectsProtection) {
  FillWay(tda_, 0, 0, 0);
  FillWay(tda_, 0, 1, 4);
  tda_.At(0, 0).protected_life = 2;

  // Way 1 unprotected -> chosen even though way 0 is LRU.
  VictimChoice c = policy_.PickVictim(tda_, 0);
  ASSERT_EQ(c.kind, VictimChoice::Kind::kWay);
  EXPECT_EQ(c.way, 1u);

  // Both protected -> bypass (paper §4.1.1).
  tda_.At(0, 1).protected_life = 1;
  EXPECT_EQ(policy_.PickVictim(tda_, 0).kind, VictimChoice::Kind::kBypass);

  // All reserved (fills in flight) -> stall like the baseline.
  tda_.Reserve(1, 0, 1, 0);
  tda_.Reserve(1, 1, 5, 0);
  EXPECT_EQ(policy_.PickVictim(tda_, 1).kind, VictimChoice::Kind::kStall);
}

TEST_F(DlpPolicyTest, BypassedQueriesEventuallyReleaseProtectedSets) {
  // Paper §4.1.1: entries are not permanently locked because bypassed
  // requests also consume PL values.
  FillWay(tda_, 0, 0, 0);
  FillWay(tda_, 0, 1, 4);
  tda_.At(0, 0).protected_life = 3;
  tda_.At(0, 1).protected_life = 3;
  int bypasses = 0;
  while (policy_.PickVictim(tda_, 0).kind == VictimChoice::Kind::kBypass) {
    policy_.OnSetQuery(tda_.SetView(0));  // the bypassed access still queries
    ++bypasses;
    ASSERT_LT(bypasses, 10);
  }
  EXPECT_EQ(bypasses, 3);
  EXPECT_EQ(policy_.PickVictim(tda_, 0).kind, VictimChoice::Kind::kWay);
}

TEST_F(DlpPolicyTest, MergedMissRewritesPlField) {
  tda_.Reserve(0, 0, 3, 0);
  CacheLine& line = tda_.At(0, 0);
  line.insn_id = 7;
  const Pc pc = 0x11;
  policy_.OnMergedMiss(line, pc);
  EXPECT_EQ(line.insn_id, policy_.pdpt()->IndexOf(pc));
  // No TDA hit is credited for a merged miss (data not in cache yet).
  EXPECT_EQ(policy_.pdpt()->global_tda_hits(), 0u);
}

TEST_F(DlpPolicyTest, ResetClearsVtaAndPdpt) {
  FillWay(tda_, 0, 0, 42);
  policy_.OnEviction(0, tda_.At(0, 0));
  policy_.Reset();
  EXPECT_FALSE(policy_.vta()->Contains(0, 42));
  EXPECT_EQ(policy_.pdpt()->global_vta_hits(), 0u);
}

TEST(GlobalProtectionPolicy, UsesSingleTableEntry) {
  auto cfg = SmallConfig(PolicyKind::kGlobalProtection);
  GlobalProtectionPolicy policy(cfg);
  EXPECT_EQ(policy.pdpt()->size(), 1u);
  // All PCs share one PD.
  EXPECT_EQ(policy.pdpt()->IndexOf(0x1234), 0u);
  EXPECT_EQ(policy.pdpt()->IndexOf(0x9999), 0u);
}

TEST(GlobalProtectionPolicy, VtaMirrorsTdaGeometry) {
  auto cfg = SmallConfig(PolicyKind::kGlobalProtection);
  GlobalProtectionPolicy policy(cfg);
  EXPECT_EQ(policy.vta()->sets(), cfg.geom.sets);
  EXPECT_EQ(policy.vta()->ways(), cfg.geom.ways);
}

}  // namespace
}  // namespace dlpsim
