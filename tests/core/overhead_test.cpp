#include "core/overhead.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(Overhead, ReproducesPaperArithmeticExactly) {
  // Paper §4.3: instruction ID 7b + PL 4b per TDA entry -> 176 bytes;
  // VTA entries of 32b tag + 7b id -> 624 bytes; PDPT of 128 x
  // (7+8+10+4)b -> 464 bytes; total 1264 bytes over a 16896-byte
  // baseline = 7.48%.
  const L1DConfig cfg = SimConfig::Baseline16KB().l1d;
  const OverheadReport r = ComputeOverhead(cfg);
  EXPECT_EQ(r.tda_extra_bytes(), 176u);
  EXPECT_EQ(r.vta_bytes(), 624u);
  EXPECT_EQ(r.pdpt_bytes(), 464u);
  EXPECT_EQ(r.total_extra_bytes(), 1264u);
  EXPECT_EQ(r.baseline_bytes(), 16896u);
  EXPECT_NEAR(r.overhead_fraction(), 0.0748, 0.0005);
}

TEST(Overhead, ScalesWithAssociativity) {
  const OverheadReport r16 = ComputeOverhead(SimConfig::Baseline16KB().l1d);
  const OverheadReport r32 = ComputeOverhead(SimConfig::Cache32KB().l1d);
  // Twice the ways -> twice the TDA/VTA extras; the PDPT is fixed.
  EXPECT_EQ(r32.tda_extra_bits, 2 * r16.tda_extra_bits);
  EXPECT_EQ(r32.vta_bits, 2 * r16.vta_bits);
  EXPECT_EQ(r32.pdpt_bits, r16.pdpt_bits);
  // Relative overhead shrinks as the data array grows.
  EXPECT_LT(r32.overhead_fraction(), r16.overhead_fraction());
}

TEST(Overhead, ExplicitVtaWaysRespected) {
  L1DConfig cfg = SimConfig::Baseline16KB().l1d;
  cfg.prot.vta_ways = 8;
  const OverheadReport r = ComputeOverhead(cfg);
  // 32 sets x 8 ways x 39 bits.
  EXPECT_EQ(r.vta_bits, 32ull * 8 * 39);
}

TEST(Overhead, TextReportMentionsEverything) {
  const OverheadReport r = ComputeOverhead(SimConfig::Baseline16KB().l1d);
  const std::string text = r.ToText();
  EXPECT_NE(text.find("1264"), std::string::npos);
  EXPECT_NE(text.find("16896"), std::string::npos);
}

}  // namespace
}  // namespace dlpsim
