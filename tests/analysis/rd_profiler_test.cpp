#include "analysis/rd_profiler.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

void Touch(RdProfiler& p, std::uint32_t set, Addr block, Pc pc = 0) {
  p.OnAccess(set, block, pc, AccessType::kLoad, false);
}

TEST(RdBucket, PaperRanges) {
  EXPECT_EQ(RdBucket(1), 0u);
  EXPECT_EQ(RdBucket(4), 0u);
  EXPECT_EQ(RdBucket(5), 1u);
  EXPECT_EQ(RdBucket(8), 1u);
  EXPECT_EQ(RdBucket(9), 2u);
  EXPECT_EQ(RdBucket(64), 2u);
  EXPECT_EQ(RdBucket(65), 3u);
  EXPECT_EQ(RdBucket(100000), 3u);
}

TEST(RdProfiler, Figure2Example) {
  // Paper Fig. 2: accesses Addr0, Addr1, Addr2, Addr0 to one set give
  // Addr0 a reuse distance of 3.
  RdProfiler p(1);
  Touch(p, 0, 0);
  Touch(p, 0, 1);
  Touch(p, 0, 2);
  Touch(p, 0, 0);
  EXPECT_EQ(p.re_references(), 1u);
  EXPECT_EQ(p.global().buckets[0], 1u);  // rd = 3 -> bucket "1~4"
}

TEST(RdProfiler, BackToBackReuseIsDistanceOne) {
  RdProfiler p(1);
  Touch(p, 0, 7);
  Touch(p, 0, 7);
  EXPECT_EQ(p.global().buckets[0], 1u);
  EXPECT_EQ(p.re_references(), 1u);
}

TEST(RdProfiler, FirstTouchesAreNotReReferences) {
  RdProfiler p(2);
  for (Addr b = 0; b < 10; ++b) Touch(p, 0, b);
  EXPECT_EQ(p.re_references(), 0u);
  EXPECT_EQ(p.accesses(), 10u);
}

TEST(RdProfiler, SetsAreIndependentStreams) {
  RdProfiler p(2);
  Touch(p, 0, 5);
  // 100 accesses to set 1 must not affect set 0's distances.
  for (Addr b = 0; b < 100; ++b) Touch(p, 1, 1000 + b);
  Touch(p, 0, 5);
  EXPECT_EQ(p.global().buckets[0], 1u);  // rd = 1 within set 0
}

TEST(RdProfiler, LongDistancesLandInTopBucket) {
  RdProfiler p(1);
  Touch(p, 0, 42);
  for (Addr b = 0; b < 70; ++b) Touch(p, 0, 100 + b);
  Touch(p, 0, 42);
  EXPECT_EQ(p.global().buckets[3], 1u);  // rd = 71
}

TEST(RdProfiler, DistanceAttributedToReReferencingPc) {
  RdProfiler p(1);
  Touch(p, 0, 1, /*pc=*/10);  // brought in by PC 10
  Touch(p, 0, 2, 99);
  Touch(p, 0, 1, /*pc=*/20);  // re-referenced by PC 20
  const auto& per_pc = p.per_pc();
  EXPECT_EQ(per_pc.count(10), 0u);
  ASSERT_EQ(per_pc.count(20), 1u);
  EXPECT_EQ(per_pc.at(20).total(), 1u);
}

TEST(RdProfiler, ConsecutiveReusesMeasureEachInterval) {
  RdProfiler p(1);
  Touch(p, 0, 1);
  Touch(p, 0, 2);
  Touch(p, 0, 1);  // rd 2
  Touch(p, 0, 1);  // rd 1
  EXPECT_EQ(p.global().total(), 2u);
  EXPECT_EQ(p.global().buckets[0], 2u);
}

TEST(RdProfiler, ResetClears) {
  RdProfiler p(1);
  Touch(p, 0, 1);
  Touch(p, 0, 1);
  p.Reset();
  EXPECT_EQ(p.accesses(), 0u);
  EXPECT_EQ(p.re_references(), 0u);
  Touch(p, 0, 1);
  EXPECT_EQ(p.re_references(), 0u);  // history gone: first touch again
}

TEST(RddHistogram, FractionsAndMerge) {
  RddHistogram a;
  a.Add(1);
  a.Add(6);
  a.Add(10);
  a.Add(100);
  EXPECT_DOUBLE_EQ(a.fraction(0), 0.25);
  RddHistogram b;
  b.Add(2);
  b.Merge(a);
  EXPECT_EQ(b.total(), 5u);
  EXPECT_EQ(b.buckets[0], 2u);
}

TEST(RddHistogram, EmptyFractionIsZero) {
  RddHistogram h;
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
}  // namespace dlpsim
