#include "analysis/reuse_miss.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

void Access(ReuseMissTracker& t, std::uint32_t set, Addr block, bool hit) {
  t.OnAccess(set, block, 0, AccessType::kLoad, hit);
}

TEST(ReuseMissTracker, CompulsoryMissesExcluded) {
  // Paper Fig. 4 excludes compulsory misses "as by definition these
  // accesses will always miss regardless of the L1D cache size".
  ReuseMissTracker t(1);
  Access(t, 0, 1, false);  // compulsory
  Access(t, 0, 2, false);  // compulsory
  EXPECT_EQ(t.reuse_accesses(), 0u);
  EXPECT_EQ(t.compulsory_accesses(), 2u);
  EXPECT_DOUBLE_EQ(t.reuse_miss_rate(), 0.0);
}

TEST(ReuseMissTracker, ReuseMissesCounted) {
  ReuseMissTracker t(1);
  Access(t, 0, 1, false);
  Access(t, 0, 1, false);  // reuse, missed (was evicted)
  Access(t, 0, 1, true);   // reuse, hit
  EXPECT_EQ(t.reuse_accesses(), 2u);
  EXPECT_EQ(t.reuse_misses(), 1u);
  EXPECT_DOUBLE_EQ(t.reuse_miss_rate(), 0.5);
}

TEST(ReuseMissTracker, PerSetFirstTouch) {
  // The same block in a different set is a separate compulsory miss.
  ReuseMissTracker t(2);
  Access(t, 0, 1, false);
  Access(t, 1, 1, false);
  EXPECT_EQ(t.compulsory_accesses(), 2u);
  EXPECT_EQ(t.reuse_accesses(), 0u);
}

TEST(ReuseMissTracker, ResetClearsHistory) {
  ReuseMissTracker t(1);
  Access(t, 0, 1, false);
  Access(t, 0, 1, false);
  t.Reset();
  EXPECT_EQ(t.reuse_accesses(), 0u);
  Access(t, 0, 1, false);
  EXPECT_EQ(t.compulsory_accesses(), 1u);
}

TEST(CompositeObserver, FansOut) {
  ReuseMissTracker a(1);
  ReuseMissTracker b(1);
  CompositeObserver c;
  c.Add(&a);
  c.Add(&b);
  c.OnAccess(0, 1, 0, AccessType::kLoad, false);
  c.OnAccess(0, 1, 0, AccessType::kLoad, true);
  EXPECT_EQ(a.reuse_accesses(), 1u);
  EXPECT_EQ(b.reuse_accesses(), 1u);
}

}  // namespace
}  // namespace dlpsim
