#include "analysis/report.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(GeoMean, BasicProperties) {
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean({2.0}), 2.0);
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeoMean, SkipsNonPositive) {
  EXPECT_NEAR(GeoMean({0.0, 4.0, 1.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({-3.0, 9.0, 1.0}), 3.0, 1e-12);
}

TEST(GeoMean, BelowOneValuesWork) {
  EXPECT_NEAR(GeoMean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // All data lines have the same width (aligned).
  std::size_t header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.Render());
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(1.0, 3), "1.000");
  EXPECT_EQ(Fmt(0.5, 0), "0");  // rounds to even
}

TEST(Pct, Formatting) {
  EXPECT_EQ(Pct(0.5), "50.0%");
  EXPECT_EQ(Pct(0.437, 1), "43.7%");
  EXPECT_EQ(Pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace dlpsim
