#include "analysis/per_sm_profiler.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(PerSmProfiler, MergesAcrossSms) {
  PerSmProfiler prof(2, 4);
  // SM0 sees a reuse at distance 1; SM1 at distance 7. A shared profiler
  // would interleave these streams; per-SM ones must not.
  auto* o0 = &prof.rd(0);
  auto* o1 = &prof.rd(1);
  (void)o0;
  (void)o1;
  // Feed through the composite observers the same way the caches do.
  // (Access the composites indirectly: attach is tested in the gpu
  // integration suite; here we drive the profilers directly.)
  PerSmProfiler p(2, 4);
  const_cast<RdProfiler&>(p.rd(0)).OnAccess(0, 1, 0, AccessType::kLoad,
                                            false);
  const_cast<RdProfiler&>(p.rd(0)).OnAccess(0, 1, 0, AccessType::kLoad,
                                            true);
  const_cast<RdProfiler&>(p.rd(1)).OnAccess(0, 9, 0, AccessType::kLoad,
                                            false);
  for (Addr b = 100; b < 106; ++b) {
    const_cast<RdProfiler&>(p.rd(1)).OnAccess(0, b, 0, AccessType::kLoad,
                                              false);
  }
  const_cast<RdProfiler&>(p.rd(1)).OnAccess(0, 9, 0, AccessType::kLoad,
                                            false);

  const RddHistogram merged = p.GlobalRdd();
  EXPECT_EQ(merged.total(), 2u);
  EXPECT_EQ(merged.buckets[0], 1u);  // SM0's rd = 1
  EXPECT_EQ(merged.buckets[1], 1u);  // SM1's rd = 7
  EXPECT_EQ(p.accesses(), 10u);
}

TEST(PerSmProfiler, ReuseCountersSum) {
  PerSmProfiler p(2, 4);
  const_cast<ReuseMissTracker&>(p.reuse(0)).OnAccess(0, 1, 0,
                                                     AccessType::kLoad, false);
  const_cast<ReuseMissTracker&>(p.reuse(0)).OnAccess(0, 1, 0,
                                                     AccessType::kLoad, false);
  const_cast<ReuseMissTracker&>(p.reuse(1)).OnAccess(0, 1, 0,
                                                     AccessType::kLoad, false);
  const_cast<ReuseMissTracker&>(p.reuse(1)).OnAccess(0, 1, 0,
                                                     AccessType::kLoad, true);
  EXPECT_EQ(p.compulsory_accesses(), 2u);  // one first-touch per SM
  EXPECT_EQ(p.reuse_accesses(), 2u);
  EXPECT_EQ(p.reuse_misses(), 1u);
  EXPECT_DOUBLE_EQ(p.reuse_miss_rate(), 0.5);
}

TEST(PerSmProfiler, PerPcMergeAddsHistograms) {
  PerSmProfiler p(2, 4);
  for (std::uint32_t sm = 0; sm < 2; ++sm) {
    const_cast<RdProfiler&>(p.rd(sm)).OnAccess(0, 1, /*pc=*/7,
                                               AccessType::kLoad, false);
    const_cast<RdProfiler&>(p.rd(sm)).OnAccess(0, 1, /*pc=*/7,
                                               AccessType::kLoad, true);
  }
  const auto per_pc = p.PerPcRdd();
  ASSERT_EQ(per_pc.count(7), 1u);
  EXPECT_EQ(per_pc.at(7).total(), 2u);
}

TEST(CacheStatsRegistry, RegistersAllCounters) {
  CacheStats stats;
  stats.accesses = 3;
  stats.bypasses = 1;
  StatRegistry reg;
  stats.RegisterAll(reg, "l1d");
  EXPECT_EQ(reg.Get("l1d.accesses"), 3u);
  EXPECT_EQ(reg.Get("l1d.bypasses"), 1u);
  EXPECT_GE(reg.Names().size(), 14u);
  stats.accesses = 10;  // live pointer semantics
  EXPECT_EQ(reg.Get("l1d.accesses"), 10u);
}

TEST(CacheStatsRegistry, CrossbarStatsRegister) {
  Crossbar xbar(IcntConfig{}, 1, 1);
  StatRegistry reg;
  xbar.RegisterStats(reg, "icnt");
  EXPECT_TRUE(reg.Has("icnt.bytes_l1d"));
  EXPECT_TRUE(reg.Has("icnt.packets_delivered"));
}

}  // namespace
}  // namespace dlpsim
