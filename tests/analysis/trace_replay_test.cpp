#include "analysis/trace_replay.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dlpsim {
namespace {

L1DConfig SmallConfig(PolicyKind policy = PolicyKind::kBaseline) {
  L1DConfig cfg;
  cfg.geom.sets = 2;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.miss_queue_entries = 4;
  cfg.policy = policy;
  return cfg;
}

TEST(ParseTrace, ParsesLoadsStoresCommentsAndRadixes) {
  std::istringstream in(
      "# header comment\n"
      "L 0x1f80 12\n"
      "S 4096 3\n"
      "\n"
      "  # indented comment\n"
      "L 0 0\n");
  std::string err;
  const auto trace = ParseTrace(in, &err);
  EXPECT_TRUE(err.empty());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].addr, 0x1f80u);
  EXPECT_EQ(trace[0].pc, 12u);
  EXPECT_EQ(trace[0].type, AccessType::kLoad);
  EXPECT_EQ(trace[1].type, AccessType::kStore);
  EXPECT_EQ(trace[1].addr, 4096u);
}

TEST(ParseTrace, ReportsAndSkipsBadLines) {
  std::istringstream in(
      "L 0x10 1\n"
      "X 0x10 1\n"
      "L zzz 1\n"
      "L 0x20 2\n");
  std::string err;
  const auto trace = ParseTrace(in, &err);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("line 3"), std::string::npos);
}

TEST(TraceReplay, HitsAndMissesCounted) {
  TraceReplayer replayer(SmallConfig(), /*fill_latency=*/5);
  std::vector<TraceAccess> trace = {
      {0, 1, AccessType::kLoad},    // miss
      {0, 1, AccessType::kLoad},    // merged or hit after fill
      {0, 1, AccessType::kLoad},
  };
  const ReplayResult r = replayer.Replay(trace);
  EXPECT_EQ(r.accesses, 3u);
  EXPECT_EQ(r.cache.loads, 3u);
  EXPECT_EQ(r.cache.misses_issued, 1u);
  EXPECT_GE(r.cache.load_hits + r.cache.mshr_merges, 2u);
}

TEST(TraceReplay, CyclicThrashThenProtectionUnderDlp) {
  // A cyclic pattern over 4 lines of one set thrashes a 2-way LRU
  // completely (0% hits). The reuse distance (4) is inside the TDA+VTA
  // detection reach (2 + 2) and the PD window (<= 15), so DLP protects
  // what fits and bypasses the rest.
  auto make_trace = [] {
    std::vector<TraceAccess> trace;
    for (int round = 0; round < 400; ++round) {
      for (Addr line = 0; line < 4; ++line) {
        trace.push_back({line * 2 * 128, static_cast<Pc>(line),
                         AccessType::kLoad});  // all map to set 0
      }
    }
    return trace;
  };

  TraceReplayer base(SmallConfig(PolicyKind::kBaseline), 5);
  const ReplayResult rb = base.Replay(make_trace());
  EXPECT_EQ(rb.cache.load_hits, 0u);  // LRU pathological case

  TraceReplayer dlp(SmallConfig(PolicyKind::kDlp), 5);
  const ReplayResult rd = dlp.Replay(make_trace());
  EXPECT_GT(rd.cache.load_hits, 400u);  // protected lines hit every round
  EXPECT_GT(rd.cache.bypasses, 0u);
}

TEST(TraceReplay, StallsResolveAndAreCounted) {
  // 3 distinct lines of one set with only 2 ways and a long fill latency:
  // the third access must stall until a fill frees a way.
  TraceReplayer replayer(SmallConfig(), /*fill_latency=*/50);
  std::vector<TraceAccess> trace = {
      {0 * 2 * 128, 0, AccessType::kLoad},
      {1 * 2 * 128, 1, AccessType::kLoad},
      {2 * 2 * 128, 2, AccessType::kLoad},
  };
  const ReplayResult r = replayer.Replay(trace);
  EXPECT_GT(r.stall_cycles, 0u);
  EXPECT_EQ(r.cache.misses_issued, 3u);
}

TEST(TraceReplay, SequentialReplaysReportDeltas) {
  TraceReplayer replayer(SmallConfig(), 5);
  std::vector<TraceAccess> trace = {{0, 0, AccessType::kLoad}};
  const ReplayResult a = replayer.Replay(trace);
  const ReplayResult b = replayer.Replay(trace);  // now a hit
  EXPECT_EQ(a.cache.loads, 1u);
  EXPECT_EQ(b.cache.loads, 1u);
  EXPECT_EQ(b.cache.load_hits, 1u);
  EXPECT_EQ(b.cache.misses_issued, 0u);
}

TEST(TraceReplay, ResetClearsCacheState) {
  TraceReplayer replayer(SmallConfig(), 5);
  std::vector<TraceAccess> trace = {{0, 0, AccessType::kLoad}};
  replayer.Replay(trace);
  replayer.Reset();
  const ReplayResult r = replayer.Replay(trace);
  EXPECT_EQ(r.cache.misses_issued, 1u);  // cold again
}

TEST(TraceReplay, StoresFlowThrough) {
  TraceReplayer replayer(SmallConfig(), 5);
  std::vector<TraceAccess> trace = {
      {0, 0, AccessType::kStore},
      {0, 0, AccessType::kLoad},
  };
  const ReplayResult r = replayer.Replay(trace);
  EXPECT_EQ(r.cache.stores, 1u);
  EXPECT_EQ(r.cache.loads, 1u);
}


TEST(ParseTraceStrict, AcceptsCleanTraceWithCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "L 0x80 1\n"
      "\n"
      "S 256 2\n"
      "  # indented comment\n"
      "L 0x100 3\n");
  std::vector<TraceAccess> out;
  TraceParseError err;
  ASSERT_TRUE(ParseTraceStrict(in, &out, &err));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].addr, 0x80u);
  EXPECT_EQ(out[1].type, AccessType::kStore);
  EXPECT_EQ(out[2].pc, 3u);
}

TEST(ParseTraceStrict, ReportsLineNumberOfFirstBadLine) {
  std::istringstream in(
      "L 0x80 1\n"
      "S 256 2\n"
      "X 512 3\n"
      "L 1024 4\n");
  std::vector<TraceAccess> out;
  TraceParseError err;
  ASSERT_FALSE(ParseTraceStrict(in, &out, &err));
  EXPECT_EQ(err.line, 3u);
  EXPECT_NE(err.message.find("unknown op"), std::string::npos);
  EXPECT_NE(err.ToString().find("line 3"), std::string::npos);
  // The prefix before the bad line survives for diagnostics.
  EXPECT_EQ(out.size(), 2u);
}

TEST(ParseTraceStrict, RejectsTruncatedAndGarbageLines) {
  {
    std::istringstream in("L 0x80\n");  // missing pc: truncated record
    std::vector<TraceAccess> out;
    TraceParseError err;
    ASSERT_FALSE(ParseTraceStrict(in, &out, &err));
    EXPECT_EQ(err.line, 1u);
  }
  {
    std::istringstream in("L 0x80 1 extra\n");
    std::vector<TraceAccess> out;
    TraceParseError err;
    ASSERT_FALSE(ParseTraceStrict(in, &out, &err));
    EXPECT_NE(err.message.find("trailing garbage"), std::string::npos);
  }
  {
    std::istringstream in("L 0xZZ 1\n");
    std::vector<TraceAccess> out;
    TraceParseError err;
    ASSERT_FALSE(ParseTraceStrict(in, &out, &err));
    EXPECT_NE(err.message.find("bad address"), std::string::npos);
  }
}

TEST(ParseTraceStrict, RejectsSignedAndOverflowingNumbers) {
  // Regression tests for parser-fuzz escapes: istream>> on an unsigned
  // and stoull both silently wrap "-5" to 2^64-5, and a pc wider than
  // 32 bits used to truncate instead of failing.
  const char* bad[] = {
      "L -5 1\n",                         // negative address wraps
      "L +5 1\n",                         // explicit sign is not a number
      "L 0x80 -1\n",                      // negative pc wraps
      "L 0x80 0x100000000\n",             // pc > UINT32_MAX
      "L 0xfffffffffffffffffffffffff 1\n",  // address overflows uint64
      "L 0x80 99999999999999999999999\n",   // pc overflows uint64
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    std::vector<TraceAccess> out;
    TraceParseError err;
    EXPECT_FALSE(ParseTraceStrict(in, &out, &err)) << text;
    EXPECT_FALSE(err.message.empty()) << text;
    EXPECT_EQ(err.line, 1u) << text;
  }
  // The lenient parser must agree: these lines are skipped, not wrapped.
  for (const char* text : bad) {
    std::istringstream in(text);
    std::string error;
    EXPECT_TRUE(ParseTrace(in, &error).empty()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ParseTraceStrict, AcceptsBoundaryValuesExactly) {
  std::istringstream in(
      "L 0xffffffffffffffff 0xffffffff\n"  // max addr, max pc
      "L 0 0\n");
  std::vector<TraceAccess> out;
  TraceParseError err;
  ASSERT_TRUE(ParseTraceStrict(in, &out, &err)) << err.ToString();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].addr, ~0ull);
  EXPECT_EQ(out[0].pc, 0xffffffffu);
  EXPECT_EQ(out[1].addr, 0u);
  EXPECT_EQ(out[1].pc, 0u);
}

TEST(TraceReplayer, RejectsInvalidConfigBeforeReplaying) {
  L1DConfig cfg = SmallConfig();
  cfg.mshr_entries = 0;
  EXPECT_THROW(TraceReplayer(cfg, 5), ConfigError);
}

}  // namespace
}  // namespace dlpsim
