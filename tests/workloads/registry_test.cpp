#include "workloads/registry.h"

#include <gtest/gtest.h>

#include <set>

namespace dlpsim {
namespace {

TEST(Registry, Has18AppsInPaperOrder) {
  const auto& apps = AllApps();
  ASSERT_EQ(apps.size(), 18u);
  EXPECT_EQ(apps.front().abbr, "HG");
  EXPECT_EQ(apps.back().abbr, "STR");
  // 9 CS then 9 CI (Table 2 layout).
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(apps[i].cache_insufficient);
  for (int i = 9; i < 18; ++i) EXPECT_TRUE(apps[i].cache_insufficient);
}

TEST(Registry, CsCiSplitMatchesTable2) {
  const std::vector<std::string> cs_list = CsAppAbbrs();
  const std::vector<std::string> ci_list = CiAppAbbrs();
  EXPECT_EQ(cs_list.size(), 9u);
  EXPECT_EQ(ci_list.size(), 9u);
  const std::set<std::string> cs(cs_list.begin(), cs_list.end());
  EXPECT_TRUE(cs.count("GEMM"));
  EXPECT_TRUE(cs.count("SRAD"));
  const std::set<std::string> ci(ci_list.begin(), ci_list.end());
  EXPECT_TRUE(ci.count("BFS"));
  EXPECT_TRUE(ci.count("KM"));
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(MakeWorkload("NOPE"), std::out_of_range);
  EXPECT_THROW(MakeWorkload(""), std::out_of_range);
  EXPECT_THROW(MakeWorkload("HG", 0.0), std::out_of_range);
}

TEST(Registry, EveryAppBuilds) {
  for (const AppInfo& app : AllApps()) {
    const Workload wl = MakeWorkload(app.abbr, 0.1);
    EXPECT_EQ(wl.info.abbr, app.abbr);
    ASSERT_NE(wl.program, nullptr);
    EXPECT_FALSE(wl.program->body().empty());
    EXPECT_GT(wl.warps_per_sm, 0u);
    EXPECT_LE(wl.warps_per_sm, 48u);  // Table 1 limit
  }
}

TEST(Registry, MemoryRatioSeparatesCsFromCi) {
  // Paper §3.2: the CS/CI threshold is a 1% memory access ratio. Our CI
  // kernels sit above it and CS kernels below it (see EXPERIMENTS.md for
  // the absolute-value caveat).
  for (const AppInfo& app : AllApps()) {
    const Workload wl = MakeWorkload(app.abbr, 0.1);
    const double ratio = wl.program->MemoryAccessRatio();
    if (app.cache_insufficient) {
      EXPECT_GE(ratio, 0.01) << app.abbr;
    } else {
      EXPECT_LT(ratio, 0.01) << app.abbr;
    }
  }
}

TEST(Registry, MemoryPcCountsFitThePdpt) {
  // Paper §4.1.3: at most 128 load instructions per kernel.
  for (const AppInfo& app : AllApps()) {
    const Workload wl = MakeWorkload(app.abbr, 0.1);
    EXPECT_LE(wl.program->NumMemoryPcs(), 128u) << app.abbr;
  }
}

TEST(Registry, BfsHasTheFig7InstructionDiversity) {
  const Workload wl = MakeWorkload("BFS", 0.1);
  EXPECT_GE(wl.program->NumMemoryPcs(), 10u);
}

TEST(Registry, ScaleControlsIterations) {
  const Workload small = MakeWorkload("SRK", 0.1);
  const Workload big = MakeWorkload("SRK", 1.0);
  EXPECT_LT(small.program->iterations(), big.program->iterations());
  // Static properties are scale-invariant.
  EXPECT_EQ(small.program->NumMemoryPcs(), big.program->NumMemoryPcs());
  EXPECT_DOUBLE_EQ(small.program->MemoryAccessRatio(),
                   big.program->MemoryAccessRatio());
}

TEST(ProgramBuilder, RegionsAreDisjoint) {
  ProgramBuilder b(4);
  b.LoadPrivate(8).LoadPrivate(8);
  auto prog = b.Build();
  const auto& body = prog->body();
  ASSERT_EQ(body.size(), 2u);
  // The two patterns live 4 GiB apart: no line can alias.
  EXPECT_NE(body[0].pattern->base(), body[1].pattern->base());
  EXPECT_GE(body[1].pattern->base() - body[0].pattern->base(), 1ull << 32);
}

TEST(ProgramBuilder, PcsAreUniquePerMemoryInstruction) {
  ProgramBuilder b(4);
  b.LoadStream().Alu(5).LoadPrivate(2).StoreStream();
  auto prog = b.Build();
  std::set<Pc> pcs;
  for (const Instruction& i : prog->body()) {
    if (i.pattern != nullptr) EXPECT_TRUE(pcs.insert(i.pc).second);
  }
  EXPECT_EQ(pcs.size(), 3u);
}

TEST(Program, CountsAndRatios) {
  ProgramBuilder b(10);
  b.Alu(97).LoadStream().Alu(2).StoreStream();
  auto prog = b.Build();
  EXPECT_EQ(prog->IssuesPerIteration(), 101u);
  EXPECT_EQ(prog->MemOpsPerIteration(), 2u);
  EXPECT_EQ(prog->ThreadInstructionsPerWarp(32), 101u * 10u * 32u);
  EXPECT_NEAR(prog->MemoryAccessRatio(), 2.0 / 101.0, 1e-12);
  EXPECT_EQ(prog->NumMemoryPcs(), 2u);
}

}  // namespace
}  // namespace dlpsim
