// Parameterized smoke tests over all 18 paper benchmarks: each app runs
// at a small scale on a reduced GPU under the baseline and DLP and must
// satisfy its class-specific expectations.
#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

class AppSmoke : public ::testing::TestWithParam<std::string> {
 protected:
  static SimConfig SmallGpu(PolicyKind policy) {
    SimConfig cfg = SimConfig::WithPolicy(policy);
    cfg.num_cores = 4;
    cfg.num_partitions = 4;
    cfg.max_core_cycles = 2'000'000;
    return cfg;
  }

  static Metrics RunApp(const std::string& abbr, PolicyKind policy,
                        double scale) {
    const Workload wl = MakeWorkload(abbr, scale);
    GpuSimulator gpu(SmallGpu(policy), wl.program.get(), wl.warps_per_sm);
    return gpu.Run();
  }
};

TEST_P(AppSmoke, BaselineCompletesWithSaneCounters) {
  const Metrics m = RunApp(GetParam(), PolicyKind::kBaseline, 0.2);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_GT(m.ipc(), 0.0);
  EXPECT_GT(m.l1d_accesses, 0u);
  EXPECT_EQ(m.l1d_loads, m.l1d_load_hits + m.l1d_load_misses);
  EXPECT_EQ(m.l1d_bypasses, 0u);  // baseline never bypasses
  EXPECT_GT(m.icnt_bytes_total, m.icnt_bytes_l1d);  // background traffic
}

TEST_P(AppSmoke, DlpCompletesAndNeverLosesMuch) {
  const Metrics base = RunApp(GetParam(), PolicyKind::kBaseline, 0.2);
  const Metrics dlp = RunApp(GetParam(), PolicyKind::kDlp, 0.2);
  ASSERT_EQ(dlp.completed, 1u);
  EXPECT_EQ(dlp.committed_thread_insns, base.committed_thread_insns);
  // Paper §6.1.1: no application loses more than ~3% with DLP; allow a
  // margin for the reduced smoke-test GPU.
  EXPECT_GT(dlp.ipc(), 0.93 * base.ipc()) << GetParam();
}

TEST_P(AppSmoke, MemoryRatioMatchesClass) {
  const Workload wl = MakeWorkload(GetParam(), 0.2);
  const Metrics m = RunApp(GetParam(), PolicyKind::kBaseline, 0.2);
  // The dynamic ratio equals the static program ratio (full warps, no
  // divergence modelled).
  EXPECT_NEAR(m.memory_access_ratio(), wl.program->MemoryAccessRatio(),
              1e-9);
  if (wl.info.cache_insufficient) {
    EXPECT_GE(m.memory_access_ratio(), 0.01);
  } else {
    EXPECT_LT(m.memory_access_ratio(), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(AllAppAbbrs()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace dlpsim
