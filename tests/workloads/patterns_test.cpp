#include "workloads/patterns.h"

#include <gtest/gtest.h>

#include <set>

namespace dlpsim {
namespace {

TEST(StreamingPattern, NeverRevisitsALine) {
  StreamingPattern p(0, 32, 32, /*iters_hint=*/50);
  std::set<Addr> lines;
  for (std::uint64_t warp = 0; warp < 4; ++warp) {
    for (std::uint64_t iter = 0; iter < 50; ++iter) {
      const Addr line = p.AddressFor(warp, iter, 0) / kLineBytes;
      EXPECT_TRUE(lines.insert(line).second)
          << "line revisited at warp " << warp << " iter " << iter;
    }
  }
}

TEST(StreamingPattern, WarpsAreDisjoint) {
  StreamingPattern p(0, 32, 32, 10);
  // Even past the hint, warps 0 and 1 must not collide within the hint.
  for (std::uint64_t i = 0; i < 10; ++i) {
    for (std::uint64_t j = 0; j < 10; ++j) {
      EXPECT_NE(p.AddressFor(0, i, 0) / kLineBytes,
                p.AddressFor(1, j, 0) / kLineBytes);
    }
  }
}

TEST(PrivateCyclicPattern, CyclesThroughExactlyWsLines) {
  PrivateCyclicPattern p(0, 32, 32, /*ws_lines=*/4);
  std::set<Addr> lines;
  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    lines.insert(p.AddressFor(7, iter, 0) / kLineBytes);
  }
  EXPECT_EQ(lines.size(), 4u);
  // Period is exactly ws_lines.
  EXPECT_EQ(p.AddressFor(7, 0, 0), p.AddressFor(7, 4, 0));
  EXPECT_NE(p.AddressFor(7, 0, 0), p.AddressFor(7, 3, 0));
}

TEST(PrivateCyclicPattern, WarpsDisjoint) {
  PrivateCyclicPattern p(0, 32, 32, 4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      EXPECT_NE(p.AddressFor(0, i, 0) / kLineBytes,
                p.AddressFor(1, j, 0) / kLineBytes);
    }
  }
}

TEST(PrivateCyclicPattern, ZeroWsClampedToOne) {
  PrivateCyclicPattern p(0, 32, 32, 0);
  EXPECT_EQ(p.AddressFor(0, 0, 0), p.AddressFor(0, 1, 0));
}

TEST(SharedTilePattern, GroupMembersShareLines) {
  SharedTilePattern p(0, 32, 32, /*tile_lines=*/8, /*share_degree=*/4);
  // Warps 0..3 share a tile; warp 4 starts a new one.
  EXPECT_EQ(p.AddressFor(0, 2, 0), p.AddressFor(3, 2, 0));
  EXPECT_NE(p.AddressFor(0, 2, 0), p.AddressFor(4, 2, 0));
}

TEST(SharedTilePattern, ShareDegreeZeroMeansAllWarps) {
  SharedTilePattern p(0, 32, 32, 8, 0);
  EXPECT_EQ(p.AddressFor(0, 5, 0), p.AddressFor(1000, 5, 0));
}

TEST(SharedTilePattern, WalksTileCyclically) {
  SharedTilePattern p(0, 32, 32, 3, 4);
  std::set<Addr> lines;
  for (std::uint64_t iter = 0; iter < 30; ++iter) {
    lines.insert(p.AddressFor(0, iter, 0) / kLineBytes);
  }
  EXPECT_EQ(lines.size(), 3u);
}

TEST(IndirectPattern, DeterministicAndInUniverse) {
  IndirectPattern p(0, 32, 32, /*universe=*/100, 0.0, 7);
  IndirectPattern q(0, 32, 32, 100, 0.0, 7);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Addr a = p.AddressFor(3, i, 0);
    EXPECT_EQ(a, q.AddressFor(3, i, 0));
    EXPECT_LT(a / kLineBytes, 100u);
  }
}

TEST(IndirectPattern, SeedsChangeTheStream) {
  IndirectPattern p(0, 32, 32, 1000, 0.0, 1);
  IndirectPattern q(0, 32, 32, 1000, 0.0, 2);
  int same = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    same += p.AddressFor(0, i, 0) == q.AddressFor(0, i, 0) ? 1 : 0;
  }
  EXPECT_LT(same, 10);
}

TEST(IndirectPattern, ZipfSkewsTowardsLowLines) {
  IndirectPattern p(0, 32, 32, 1000, 0.9, 3);
  std::uint64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.AddressFor(i % 64, i, 0) / kLineBytes < 20) ++low;
  }
  EXPECT_GT(low, static_cast<std::uint64_t>(0.1 * n));
}

TEST(AccessPattern, LanesGroupWithinLines) {
  PrivateCyclicPattern p(0, /*lanes_per_line=*/8, 32, 4);
  EXPECT_EQ(p.groups(), 4u);
  // Lanes 0..7 share line; lane 8 starts the next group.
  const Addr l0 = p.AddressFor(0, 0, 0) / kLineBytes;
  const Addr l7 = p.AddressFor(0, 0, 7) / kLineBytes;
  const Addr l8 = p.AddressFor(0, 0, 8) / kLineBytes;
  EXPECT_EQ(l0, l7);
  EXPECT_NE(l0, l8);
  // Within a group, lanes touch distinct words.
  EXPECT_NE(p.AddressFor(0, 0, 0), p.AddressFor(0, 0, 1));
}

TEST(AccessPattern, BaseOffsetsApply) {
  PrivateCyclicPattern p(1ull << 32, 32, 32, 2);
  EXPECT_GE(p.AddressFor(0, 0, 0), 1ull << 32);
}

TEST(AccessPattern, DescribeIsNonEmpty) {
  StreamingPattern a(0, 32, 32, 1);
  PrivateCyclicPattern b(0, 32, 32, 2);
  SharedTilePattern c(0, 32, 32, 2, 2);
  IndirectPattern d(0, 32, 32, 10, 0.5, 1);
  for (const AccessPattern* p :
       std::initializer_list<const AccessPattern*>{&a, &b, &c, &d}) {
    EXPECT_FALSE(p->Describe().empty());
  }
}

}  // namespace
}  // namespace dlpsim
