// Parameterized property sweep: for every management policy x cache
// geometry x scheduler, a small thrashing kernel must complete and
// satisfy the cache-accounting invariants. This is the broad-coverage
// net that catches policy/geometry interactions unit tests miss.
#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

struct SweepParam {
  PolicyKind policy;
  std::uint32_t ways;
  SchedulerKind sched;
  WritePolicy write;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = ToString(info.param.policy);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += "_w" + std::to_string(info.param.ways);
  name += info.param.sched == SchedulerKind::kGto ? "_gto" : "_lrr";
  name += info.param.write == WritePolicy::kWriteBackOnHit ? "_wb" : "_we";
  return name;
}

class PolicySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicySweep, CompletesAndConserves) {
  const SweepParam p = GetParam();
  SimConfig cfg = SimConfig::WithPolicy(p.policy);
  cfg.num_cores = 2;
  cfg.num_partitions = 3;
  cfg.l1d.geom.ways = p.ways;
  cfg.l1d.write_policy = p.write;
  cfg.max_core_cycles = 600000;

  ProgramBuilder b(24);
  b.LoadIndirect(2048, 0.2, 0x77)
      .LoadPrivate(2)
      .LoadShared(6, 4)
      .LoadStream(8)
      .StoreStream()
      .Alu(10);
  auto prog = b.Build();

  GpuSimulator gpu(cfg, prog.get(), 16, p.sched);
  const Metrics m = gpu.Run();

  ASSERT_EQ(m.completed, 1u);
  // Work is policy/geometry independent.
  EXPECT_EQ(m.committed_thread_insns, 2ull * 16 * 24 * 15 * 32);
  // Accounting identities.
  EXPECT_EQ(m.l1d_loads, m.l1d_load_hits + m.l1d_load_misses);
  EXPECT_EQ(m.l1d_load_misses,
            m.l1d_misses_issued + m.l1d_mshr_merges + m.l1d_bypasses);
  EXPECT_EQ(m.l1d_fills, m.l1d_misses_issued);
  EXPECT_EQ(m.l1d_accesses, m.l1d_loads + m.l1d_stores);
  // Evictions cannot exceed fills (only filled lines are displaced) and
  // writebacks cannot exceed evictions.
  EXPECT_LE(m.l1d_evictions, m.l1d_fills);
  EXPECT_LE(m.l1d_writebacks, m.l1d_evictions);
  // Non-bypassing policies never bypass.
  if (p.policy == PolicyKind::kBaseline) {
    EXPECT_EQ(m.l1d_bypasses, 0u);
  }
  // DRAM writes only arise from stores/writebacks, which exist here.
  EXPECT_GT(m.dram_writes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (PolicyKind policy :
           {PolicyKind::kBaseline, PolicyKind::kStallBypass,
            PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
        for (std::uint32_t ways : {2u, 4u, 8u}) {
          params.push_back(
              {policy, ways, SchedulerKind::kGto, WritePolicy::kWriteBackOnHit});
        }
        // Scheduler and write-policy variants at baseline geometry.
        params.push_back(
            {policy, 4u, SchedulerKind::kLrr, WritePolicy::kWriteBackOnHit});
        params.push_back(
            {policy, 4u, SchedulerKind::kGto, WritePolicy::kWriteEvict});
      }
      return params;
    }()),
    ParamName);

// Protected-life bound: after any DLP run, no line's PL may exceed the
// 4-bit field and no PD may exceed pd_max.
TEST(DlpInvariants, FieldWidthBoundsHold) {
  SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  cfg.num_cores = 1;
  cfg.num_partitions = 2;
  ProgramBuilder b(40);
  b.LoadIndirect(1024, 0.0, 1).LoadPrivate(1).StoreStream().Alu(5);
  auto prog = b.Build();
  GpuSimulator gpu(cfg, prog.get(), 16);
  gpu.Run();

  const L1DCache& l1d = gpu.cores()[0].l1d();
  const std::uint32_t pd_max = cfg.l1d.prot.pd_max();
  for (std::uint32_t set = 0; set < cfg.l1d.geom.sets; ++set) {
    for (const CacheLine& line : l1d.tda().SetView(set)) {
      EXPECT_LE(line.protected_life, pd_max);
      EXPECT_LT(line.insn_id, cfg.l1d.prot.pdpt_entries);
    }
  }
  const PdpTable* pdpt = l1d.policy().pdpt();
  ASSERT_NE(pdpt, nullptr);
  for (std::uint32_t i = 0; i < pdpt->size(); ++i) {
    EXPECT_LE(pdpt->Pd(i), pd_max);
  }
}

}  // namespace
}  // namespace dlpsim
