#include "gpu/metrics.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(Metrics, DerivedQuantities) {
  Metrics m;
  m.core_cycles = 100;
  m.committed_thread_insns = 500;
  m.committed_mem_insns = 50;
  EXPECT_DOUBLE_EQ(m.ipc(), 5.0);
  EXPECT_DOUBLE_EQ(m.memory_access_ratio(), 0.1);

  m.l1d_loads = 100;
  m.l1d_load_hits = 30;
  m.l1d_bypasses = 40;
  // Bypassed accesses do not count towards the hit rate (paper Fig. 12a).
  EXPECT_DOUBLE_EQ(m.l1d_hit_rate(), 0.5);

  m.l1d_accesses = 120;
  EXPECT_EQ(m.l1d_traffic(), 80u);

  m.load_block_cycles = 1000;
  m.load_block_events = 4;
  EXPECT_DOUBLE_EQ(m.avg_load_latency(), 250.0);
}

TEST(Metrics, ZeroSafeDerived) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(m.memory_access_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.l1d_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_load_latency(), 0.0);
}

TEST(Metrics, HitRateClampsWhenBypassesExceedLoads) {
  // Regression: stores can bypass too, so l1d_bypasses may exceed
  // l1d_loads; the old `loads - bypasses` underflowed to ~2^64 and the
  // hit rate collapsed to ~0 instead of 1.
  Metrics m;
  m.l1d_loads = 10;
  m.l1d_load_hits = 10;
  m.l1d_bypasses = 25;
  EXPECT_DOUBLE_EQ(m.l1d_hit_rate(), 0.0);  // no serviced loads -> defined 0
  EXPECT_GE(m.l1d_hit_rate(), 0.0);
  EXPECT_LE(m.l1d_hit_rate(), 1.0);

  m.l1d_accesses = 20;
  EXPECT_EQ(m.l1d_traffic(), 0u);  // clamped, not wrapped

  // Equal counts hit the boundary exactly.
  m.l1d_bypasses = 10;
  EXPECT_DOUBLE_EQ(m.l1d_hit_rate(), 0.0);
}

TEST(Metrics, FieldTableCoversTextSerialization) {
  // MetricsFields() drives ToText/JSON/CSV/timeline deltas alike; every
  // reflected field must survive the text round trip.
  Metrics m;
  std::uint64_t seed = 3;
  for (const MetricsField& f : MetricsFields()) {
    m.*(f.member) = seed;
    seed += 17;
  }
  bool ok = false;
  const Metrics back = Metrics::FromText(m.ToText(), &ok);
  ASSERT_TRUE(ok);
  for (const MetricsField& f : MetricsFields()) {
    EXPECT_EQ(back.*(f.member), m.*(f.member)) << f.name;
  }
}

TEST(Metrics, TextRoundTrip) {
  Metrics m;
  m.core_cycles = 123;
  m.committed_thread_insns = 456;
  m.l1d_bypasses = 7;
  m.dram_row_misses = 99;
  m.completed = 1;
  bool ok = false;
  const Metrics back = Metrics::FromText(m.ToText(), &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back.ToText(), m.ToText());
  EXPECT_EQ(back.core_cycles, 123u);
  EXPECT_EQ(back.dram_row_misses, 99u);
}

TEST(Metrics, FromTextRejectsGarbage) {
  bool ok = true;
  Metrics::FromText("not a metrics dump", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Metrics::FromText("core_cycles 5", &ok);  // missing fields
  EXPECT_FALSE(ok);
}

TEST(Metrics, FromTextIgnoresUnknownKeys) {
  Metrics m;
  m.core_cycles = 9;
  bool ok = false;
  const Metrics back =
      Metrics::FromText(m.ToText() + "future_field 42\n", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back.core_cycles, 9u);
}

}  // namespace
}  // namespace dlpsim
