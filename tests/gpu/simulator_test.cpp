// End-to-end integration tests on small GPU configurations.
#include "gpu/simulator.h"

#include <gtest/gtest.h>

#include "analysis/per_sm_profiler.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

SimConfig TinyGpu(PolicyKind policy = PolicyKind::kBaseline) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  cfg.max_core_cycles = 400000;
  return cfg;
}

std::unique_ptr<Program> SmallKernel() {
  ProgramBuilder b(8);
  b.Alu(10).LoadStream().Alu(5).LoadPrivate(2).StoreStream().Alu(5);
  return b.Build();
}

TEST(GpuSimulator, RunsToCompletion) {
  auto prog = SmallKernel();
  GpuSimulator gpu(TinyGpu(), prog.get(), 4);
  const Metrics m = gpu.Run();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_GT(m.core_cycles, 0u);
  // 2 cores x 4 warps x 8 iters x 23 slots x 32 threads.
  EXPECT_EQ(m.committed_thread_insns, 2ull * 4 * 8 * 23 * 32);
  EXPECT_EQ(m.committed_mem_insns, 2ull * 4 * 8 * 3 * 32);
}

TEST(GpuSimulator, DeterministicAcrossRuns) {
  auto prog = SmallKernel();
  GpuSimulator a(TinyGpu(), prog.get(), 4);
  GpuSimulator b(TinyGpu(), prog.get(), 4);
  const Metrics ma = a.Run();
  const Metrics mb = b.Run();
  EXPECT_EQ(ma.ToText(), mb.ToText());
}

TEST(GpuSimulator, ConservationInvariants) {
  auto prog = SmallKernel();
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    GpuSimulator gpu(TinyGpu(policy), prog.get(), 4);
    const Metrics m = gpu.Run();
    SCOPED_TRACE(ToString(policy));
    EXPECT_EQ(m.completed, 1u);
    // Every load is a hit or a miss.
    EXPECT_EQ(m.l1d_loads, m.l1d_load_hits + m.l1d_load_misses);
    // Misses split into issued + merged + bypassed.
    EXPECT_EQ(m.l1d_load_misses,
              m.l1d_misses_issued + m.l1d_mshr_merges + m.l1d_bypasses);
    // Every issued miss eventually fills.
    EXPECT_EQ(m.l1d_fills, m.l1d_misses_issued);
    // Accesses = loads + stores.
    EXPECT_EQ(m.l1d_accesses, m.l1d_loads + m.l1d_stores);
    // Interconnect carried something both ways.
    EXPECT_GT(m.icnt_bytes_total, 0u);
    EXPECT_GT(m.dram_reads, 0u);
  }
}

TEST(GpuSimulator, SameWorkAcrossPolicies) {
  // Committed instructions are policy independent (completion semantics).
  auto prog = SmallKernel();
  std::uint64_t committed = 0;
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    GpuSimulator gpu(TinyGpu(policy), prog.get(), 4);
    const Metrics m = gpu.Run();
    if (committed == 0) {
      committed = m.committed_thread_insns;
    } else {
      EXPECT_EQ(m.committed_thread_insns, committed);
    }
  }
}

TEST(GpuSimulator, BypassPoliciesNeverDeadlock) {
  // A thrash-heavy kernel under every policy must still complete.
  ProgramBuilder b(30);
  b.LoadIndirect(4096, 0.0, 0x1).LoadIndirect(4096, 0.0, 0x2).LoadPrivate(2)
      .StoreStream()
      .Alu(4);
  auto prog = b.Build();
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    GpuSimulator gpu(TinyGpu(policy), prog.get(), 16);
    const Metrics m = gpu.Run();
    EXPECT_EQ(m.completed, 1u) << ToString(policy);
  }
}

TEST(GpuSimulator, MaxCycleCapStopsRunaways) {
  SimConfig cfg = TinyGpu();
  cfg.max_core_cycles = 500;
  ProgramBuilder b(1000000);  // would run ~forever
  b.Alu(100).LoadStream();
  auto prog = b.Build();
  GpuSimulator gpu(cfg, prog.get(), 4);
  const Metrics m = gpu.Run();
  EXPECT_EQ(m.completed, 0u);
  EXPECT_LE(m.core_cycles, 502u);
}

TEST(GpuSimulator, AluOnlyKernelApproachesPeakIpc) {
  SimConfig cfg = TinyGpu();
  ProgramBuilder b(200);
  b.Alu(100);
  auto prog = b.Build();
  GpuSimulator gpu(cfg, prog.get(), 8);
  const Metrics m = gpu.Run();
  // Peak = cores x schedulers x warp_size = 2 x 2 x 32 = 128.
  EXPECT_GT(m.ipc(), 0.9 * 128.0);
  EXPECT_EQ(m.l1d_accesses, 0u);
}

TEST(GpuSimulator, DlpProtectsAThrashingReusePattern) {
  // The headline mechanism end-to-end: private lines whose reuse distance
  // exceeds the 4-way LRU reach but fits in the PD window get protected,
  // raising the hit rate versus the baseline.
  SimConfig base_cfg = TinyGpu(PolicyKind::kBaseline);
  SimConfig dlp_cfg = TinyGpu(PolicyKind::kDlp);
  ProgramBuilder b(120);
  b.LoadIndirect(8192, 0.0, 0x11)
      .LoadIndirect(8192, 0.0, 0x12)
      .LoadIndirect(8192, 0.0, 0x13)
      .LoadIndirect(8192, 0.0, 0x14)
      .LoadIndirect(8192, 0.0, 0x15)
      .LoadPrivate(1)
      .LoadPrivate(1)
      .StoreStream()
      .Alu(30);
  auto prog = b.Build();

  GpuSimulator base(base_cfg, prog.get(), 32);
  GpuSimulator dlp(dlp_cfg, prog.get(), 32);
  const Metrics mb = base.Run();
  const Metrics md = dlp.Run();
  ASSERT_EQ(mb.completed, 1u);
  ASSERT_EQ(md.completed, 1u);
  EXPECT_GT(md.l1d_hit_rate(), mb.l1d_hit_rate() + 0.05);
  EXPECT_GT(md.l1d_bypasses, 0u);
  EXPECT_LT(md.l1d_evictions, mb.l1d_evictions);
}

TEST(GpuSimulator, PerSmProfilerSeesEveryCore) {
  auto prog = SmallKernel();
  SimConfig cfg = TinyGpu();
  GpuSimulator gpu(cfg, prog.get(), 4);
  PerSmProfiler prof(cfg.num_cores, cfg.l1d.geom.sets);
  prof.AttachTo(gpu);
  const Metrics m = gpu.Run();
  EXPECT_EQ(prof.accesses(), m.l1d_accesses);
  EXPECT_GT(prof.rd(0).accesses(), 0u);
  EXPECT_GT(prof.rd(1).accesses(), 0u);
  // Compulsory + reuse accesses partition all accesses.
  EXPECT_EQ(prof.compulsory_accesses() + prof.reuse_accesses(),
            m.l1d_accesses);
}

TEST(GpuSimulator, LrrSchedulerAlsoCompletes) {
  auto prog = SmallKernel();
  GpuSimulator gpu(TinyGpu(), prog.get(), 4, SchedulerKind::kLrr);
  EXPECT_EQ(gpu.Run().completed, 1u);
}

}  // namespace
}  // namespace dlpsim
