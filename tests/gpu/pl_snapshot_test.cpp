// Verifies the incrementally maintained protected-line counters against
// a brute-force walk of every core's tag array: SnapshotPolicy must
// report exactly what a full TDA scan would, at any point of a run.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "cache/line.h"
#include "cache/pl_counters.h"
#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

SimConfig SmallGpu(PolicyKind policy) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 4;
  cfg.num_partitions = 2;
  cfg.max_core_cycles = 400000;
  return cfg;
}

/// The replaced implementation: walk every line of every set.
std::array<std::uint64_t, 16> BruteForceHistogram(GpuSimulator& gpu) {
  std::array<std::uint64_t, 16> hist{};
  for (SmCore& core : gpu.cores()) {
    const TagArray& tda = core.l1d().tda();
    for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
      for (const CacheLine& line : tda.SetView(set)) {
        if (!IsOccupied(line.state)) continue;
        ++hist[PlCounters::Bucket(line.protected_life)];
      }
    }
  }
  return hist;
}

void ExpectSnapshotMatchesWalk(GpuSimulator& gpu) {
  const std::array<std::uint64_t, 16> walk = BruteForceHistogram(gpu);
  const PolicySnapshot snap = gpu.SnapshotPolicy();
  std::uint64_t protected_walk = 0;
  for (std::size_t b = 0; b < walk.size(); ++b) {
    EXPECT_EQ(snap.pl_histogram[b], walk[b]) << "bucket " << b;
    if (b > 0) protected_walk += walk[b];
  }
  EXPECT_EQ(snap.protected_lines, protected_walk);
}

TEST(PlSnapshot, MatchesBruteForceWalkMidRunAndAtEnd) {
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kGlobalProtection,
        PolicyKind::kDlp}) {
    SCOPED_TRACE(ToString(policy));
    const Workload wl = MakeWorkload("SRK", 0.05);
    GpuSimulator gpu(SmallGpu(policy), wl.program.get(), wl.warps_per_sm);

    // Compare at several points mid-flight (while lines churn) ...
    int checks = 0;
    while (!gpu.Done() && checks < 8) {
      for (int i = 0; i < 5000 && !gpu.Done(); ++i) gpu.Step();
      ExpectSnapshotMatchesWalk(gpu);
      ++checks;
    }
    // ... and after the run fully drains.
    const Metrics m = gpu.Run();
    EXPECT_EQ(m.completed, 1u);
    ExpectSnapshotMatchesWalk(gpu);
  }
}

TEST(PlSnapshot, CountersSurviveReset) {
  const Workload wl = MakeWorkload("HS", 0.05);
  GpuSimulator gpu(SmallGpu(PolicyKind::kDlp), wl.program.get(),
                   wl.warps_per_sm);
  for (int i = 0; i < 20000 && !gpu.Done(); ++i) gpu.Step();
  for (SmCore& core : gpu.cores()) core.l1d().Reset();
  ExpectSnapshotMatchesWalk(gpu);
  for (SmCore& core : gpu.cores()) {
    EXPECT_EQ(core.l1d().pl_counters().occupied_lines(), 0u);
  }
}

}  // namespace
}  // namespace dlpsim
