#include "mem/partition.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

SimConfig FastConfig() {
  SimConfig cfg;
  cfg.num_partitions = 1;
  cfg.num_cores = 1;
  cfg.icnt.latency = 2;
  cfg.l2.latency = 4;
  cfg.dram.t_row_hit = 4;
  cfg.dram.t_row_miss = 8;
  cfg.dram.t_rc = 6;
  return cfg;
}

IcntPacket ReadReq(Addr addr, std::uint32_t src = 0, MshrToken token = 5) {
  IcntPacket p;
  p.kind = IcntPacket::Kind::kReadRequest;
  p.addr = addr;
  p.src = src;
  p.dst = 0;
  p.token = token;
  return p;
}

/// Drives partition 0 until a reply lands in the crossbar's core queue.
bool RunForReply(MemoryPartition& part, Crossbar& icnt, IcntPacket* reply,
                 Cycle max_cycles = 2000) {
  for (Cycle now = 1; now <= max_cycles; ++now) {
    part.Tick(now, icnt);
    icnt.Tick(now);
    if (icnt.HasForCore(0)) {
      *reply = icnt.PopForCore(0);
      return true;
    }
  }
  return false;
}

TEST(MemoryPartition, ReadMissGoesThroughDramAndReplies) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 1, 1);
  MemoryPartition part(cfg, 0);

  icnt.InjectFromCore(0, ReadReq(0x1000, 0, 42));
  // Let the request reach the partition.
  for (Cycle now = 1; now < 10; ++now) icnt.Tick(now);

  IcntPacket reply;
  ASSERT_TRUE(RunForReply(part, icnt, &reply));
  EXPECT_EQ(reply.kind, IcntPacket::Kind::kReadReply);
  EXPECT_EQ(reply.token, 42u);
  EXPECT_EQ(reply.addr, 0x1000u);
  EXPECT_EQ(part.l2().stats().load_misses, 1u);
  EXPECT_EQ(part.dram().reads, 1u);
}

TEST(MemoryPartition, SecondReadHitsInL2) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 1, 1);
  MemoryPartition part(cfg, 0);

  icnt.InjectFromCore(0, ReadReq(0x1000));
  for (Cycle now = 1; now < 10; ++now) icnt.Tick(now);
  IcntPacket reply;
  ASSERT_TRUE(RunForReply(part, icnt, &reply));

  icnt.InjectFromCore(0, ReadReq(0x1000));
  for (Cycle now = 3000; now < 3010; ++now) icnt.Tick(now);
  ASSERT_TRUE(RunForReply(part, icnt, &reply));
  EXPECT_EQ(part.l2().stats().load_hits, 1u);
  EXPECT_EQ(part.dram().reads, 1u);  // no second DRAM read
}

TEST(MemoryPartition, WritesAreAbsorbedWithoutReply) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 1, 1);
  MemoryPartition part(cfg, 0);

  IcntPacket write;
  write.kind = IcntPacket::Kind::kWrite;
  write.addr = 0x2000;
  write.src = 0;
  write.dst = 0;
  write.bytes = 136;
  icnt.InjectFromCore(0, write);
  for (Cycle now = 1; now < 20; ++now) {
    icnt.Tick(now);
    part.Tick(now, icnt);
  }
  // Write miss forwards to DRAM; no reply is generated.
  for (Cycle now = 20; now < 200; ++now) part.Tick(now, icnt);
  EXPECT_FALSE(icnt.HasForCore(0));
  EXPECT_EQ(part.dram().writes, 1u);
}

TEST(MemoryPartition, OtherTrafficIsAbsorbed) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 1, 1);
  MemoryPartition part(cfg, 0);
  IcntPacket other;
  other.kind = IcntPacket::Kind::kOther;
  other.dst = 0;
  other.bytes = 100;
  icnt.InjectFromCore(0, other);
  for (Cycle now = 1; now < 50; ++now) {
    icnt.Tick(now);
    part.Tick(now, icnt);
  }
  EXPECT_FALSE(icnt.HasForCore(0));
  EXPECT_TRUE(part.Idle());
}

TEST(MemoryPartition, MergedReadsGetIndividualReplies) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 2, 1);
  MemoryPartition part(cfg, 0);

  icnt.InjectFromCore(0, ReadReq(0x3000, 0, 1));
  icnt.InjectFromCore(1, ReadReq(0x3000, 1, 2));
  for (Cycle now = 1; now < 10; ++now) icnt.Tick(now);

  int replies = 0;
  for (Cycle now = 10; now < 2000 && replies < 2; ++now) {
    part.Tick(now, icnt);
    icnt.Tick(now);
    while (icnt.HasForCore(0)) {
      icnt.PopForCore(0);
      ++replies;
    }
    while (icnt.HasForCore(1)) {
      icnt.PopForCore(1);
      ++replies;
    }
  }
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(part.dram().reads, 1u);  // one fetch for both
  EXPECT_EQ(part.l2().stats().mshr_merges, 1u);
}

TEST(MemoryPartition, IdleWhenDrained) {
  const SimConfig cfg = FastConfig();
  Crossbar icnt(cfg.icnt, 1, 1);
  MemoryPartition part(cfg, 0);
  EXPECT_TRUE(part.Idle());
  icnt.InjectFromCore(0, ReadReq(0));
  for (Cycle now = 1; now < 10; ++now) icnt.Tick(now);
  IcntPacket reply;
  ASSERT_TRUE(RunForReply(part, icnt, &reply));
  EXPECT_TRUE(part.Idle());
}

}  // namespace
}  // namespace dlpsim
