#include "mem/l2_cache.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

L2Config SmallL2() {
  L2Config cfg;
  cfg.geom.sets = 2;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.mshr_max_merged = 2;
  return cfg;
}

IcntPacket Waiter(std::uint32_t src) {
  IcntPacket p;
  p.kind = IcntPacket::Kind::kReadRequest;
  p.src = src;
  return p;
}

TEST(L2Cache, MissFillHit) {
  L2Cache l2(SmallL2());
  EXPECT_EQ(l2.AccessRead(0, Waiter(1)), L2Cache::Result::kMissIssued);
  const auto waiters = l2.Fill(0);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].src, 1u);
  EXPECT_EQ(l2.AccessRead(0, Waiter(2)), L2Cache::Result::kHit);
  EXPECT_EQ(l2.stats().load_hits, 1u);
}

TEST(L2Cache, ConcurrentMissesMerge) {
  L2Cache l2(SmallL2());
  EXPECT_EQ(l2.AccessRead(5, Waiter(1)), L2Cache::Result::kMissIssued);
  EXPECT_EQ(l2.AccessRead(5, Waiter(2)), L2Cache::Result::kMissMerged);
  // Merge limit 2 -> the third requester stalls.
  EXPECT_EQ(l2.AccessRead(5, Waiter(3)), L2Cache::Result::kStall);
  const auto waiters = l2.Fill(5);
  ASSERT_EQ(waiters.size(), 2u);
  EXPECT_EQ(waiters[0].src, 1u);
  EXPECT_EQ(waiters[1].src, 2u);
}

TEST(L2Cache, MshrCapacityStalls) {
  L2Cache l2(SmallL2());
  for (Addr b = 0; b < 4; ++b) {
    EXPECT_EQ(l2.AccessRead(b, Waiter(0)), L2Cache::Result::kMissIssued);
  }
  EXPECT_EQ(l2.AccessRead(99, Waiter(0)), L2Cache::Result::kStall);
  l2.Fill(0);
  EXPECT_EQ(l2.AccessRead(99, Waiter(0)), L2Cache::Result::kMissIssued);
}

TEST(L2Cache, AllocateOnFillNeverReservesSets) {
  // Unlike the L1D, in-flight fetches must not occupy ways: start many
  // fetches to one set and confirm reads to other blocks of that set
  // still hit after their fills.
  L2Cache l2(SmallL2());
  // Set 0 holds even blocks (2 sets, linear). Fetch 4 distinct blocks.
  EXPECT_EQ(l2.AccessRead(0, Waiter(0)), L2Cache::Result::kMissIssued);
  EXPECT_EQ(l2.AccessRead(2, Waiter(0)), L2Cache::Result::kMissIssued);
  EXPECT_EQ(l2.AccessRead(4, Waiter(0)), L2Cache::Result::kMissIssued);
  EXPECT_EQ(l2.AccessRead(6, Waiter(0)), L2Cache::Result::kMissIssued);
  l2.Fill(0);
  l2.Fill(2);
  EXPECT_EQ(l2.AccessRead(0, Waiter(0)), L2Cache::Result::kHit);
  EXPECT_EQ(l2.AccessRead(2, Waiter(0)), L2Cache::Result::kHit);
}

TEST(L2Cache, FillEvictsLruAndWritesBackDirty) {
  L2Cache l2(SmallL2());
  // Fill blocks 0 and 2 into set 0 and dirty block 0.
  l2.AccessRead(0, Waiter(0));
  l2.Fill(0);
  l2.AccessRead(2, Waiter(0));
  l2.Fill(2);
  EXPECT_EQ(l2.AccessWrite(0), L2Cache::Result::kHit);
  EXPECT_TRUE(l2.TakeWritebacks().empty());

  // A third block displaces LRU (block 0... it was written last, so LRU
  // is block 2). Touch order: 0 filled, 2 filled, 0 written -> LRU = 2.
  l2.AccessRead(4, Waiter(0));
  l2.Fill(4);
  EXPECT_EQ(l2.stats().evictions, 1u);
  EXPECT_TRUE(l2.TakeWritebacks().empty());  // block 2 was clean

  // Displace again: now the dirty block 0 goes.
  l2.AccessRead(6, Waiter(0));
  l2.Fill(6);
  const auto wbs = l2.TakeWritebacks();
  ASSERT_EQ(wbs.size(), 1u);
  EXPECT_EQ(wbs[0], 0u);
}

TEST(L2Cache, WriteMissForwardsToDram) {
  L2Cache l2(SmallL2());
  EXPECT_EQ(l2.AccessWrite(10), L2Cache::Result::kMissIssued);
  EXPECT_EQ(l2.stats().stores, 1u);
  EXPECT_EQ(l2.stats().store_hits, 0u);
}

TEST(L2Cache, StallHasNoSideEffects) {
  L2Cache l2(SmallL2());
  l2.AccessRead(5, Waiter(1));
  l2.AccessRead(5, Waiter(2));
  const std::uint64_t accesses = l2.stats().accesses;
  EXPECT_EQ(l2.AccessRead(5, Waiter(3)), L2Cache::Result::kStall);
  EXPECT_EQ(l2.stats().accesses, accesses);
  EXPECT_EQ(l2.pending_fetches(), 1u);
}

}  // namespace
}  // namespace dlpsim
