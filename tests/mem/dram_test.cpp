#include "mem/dram.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

DramConfig SmallDram() {
  DramConfig cfg;
  cfg.banks = 2;
  cfg.row_bytes = 512;  // 4 lines per row at 128B
  cfg.t_row_hit = 10;
  cfg.t_row_miss = 30;
  cfg.t_rc = 20;
  cfg.bus_bytes_per_cycle = 16;  // 8-cycle burst for a 128B line
  return cfg;
}

std::vector<DramChannel::Completion> RunUntil(DramChannel& dram,
                                              std::size_t count,
                                              Cycle max_cycles = 10000) {
  std::vector<DramChannel::Completion> done;
  for (Cycle now = 0; now < max_cycles && done.size() < count; ++now) {
    for (const auto& c : dram.Tick(now)) done.push_back(c);
  }
  return done;
}

TEST(Dram, BankAndRowMapping) {
  DramChannel dram(SmallDram(), 128);
  // 4 lines/row, 2 banks: lines 0-3 bank 0 row 0; 4-7 bank 1 row 0;
  // 8-11 bank 0 row 1.
  EXPECT_EQ(dram.BankOf(0), 0u);
  EXPECT_EQ(dram.BankOf(3), 0u);
  EXPECT_EQ(dram.BankOf(4), 1u);
  EXPECT_EQ(dram.BankOf(8), 0u);
  EXPECT_EQ(dram.RowOf(0), 0u);
  EXPECT_EQ(dram.RowOf(8), 1u);
}

TEST(Dram, SingleReadCompletesWithRowMissLatency) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 7});
  const auto done = RunUntil(dram, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 7u);
  EXPECT_FALSE(done[0].write);
  EXPECT_EQ(dram.row_misses, 1u);
  EXPECT_EQ(dram.row_hits, 0u);
}

TEST(Dram, SequentialLinesHitTheOpenRow) {
  DramChannel dram(SmallDram(), 128);
  for (Addr b = 0; b < 4; ++b) dram.Enqueue({b, false, b});
  RunUntil(dram, 4);
  EXPECT_EQ(dram.row_misses, 1u);  // first access opens the row
  EXPECT_EQ(dram.row_hits, 3u);
}

TEST(Dram, AlternatingRowsInOneBankMiss) {
  DramChannel dram(SmallDram(), 128);
  // Lines 0 and 8 share bank 0 but different rows.
  dram.Enqueue({0, false, 0});
  dram.Enqueue({8, false, 1});
  dram.Enqueue({0, false, 2});
  RunUntil(dram, 3);
  EXPECT_EQ(dram.row_misses, 3u);
}

TEST(Dram, FirstReadySchedulingSkipsBusyBank) {
  DramChannel dram(SmallDram(), 128);
  // Two requests to bank 0 (rows 0, 1) then one to bank 1: the bank-1
  // request must not wait behind the bank-0 row miss.
  dram.Enqueue({0, false, 0});
  dram.Enqueue({8, false, 1});
  dram.Enqueue({4, false, 2});
  const auto done = RunUntil(dram, 3);
  ASSERT_EQ(done.size(), 3u);
  // The bank-1 request (tag 2) overtakes the second bank-0 one (tag 1).
  EXPECT_EQ(done[0].tag, 0u);
  EXPECT_EQ(done[1].tag, 2u);
  EXPECT_EQ(done[2].tag, 1u);
}

TEST(Dram, WritesCompleteAndAreCounted) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, true, 0});
  const auto done = RunUntil(dram, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].write);
  EXPECT_EQ(dram.writes, 1u);
  EXPECT_EQ(dram.reads, 0u);
}

TEST(Dram, QueueCapacityBounds) {
  DramChannel dram(SmallDram(), 128);
  int accepted = 0;
  while (dram.CanAccept()) {
    dram.Enqueue({static_cast<Addr>(accepted), false, 0});
    ++accepted;
  }
  EXPECT_EQ(accepted, 32);
  EXPECT_FALSE(dram.CanAccept());
  RunUntil(dram, 1);
  EXPECT_TRUE(dram.CanAccept());
}

TEST(Dram, BusSerializesBackToBackBursts) {
  DramChannel dram(SmallDram(), 128);
  // Row hits in both banks: throughput should be bus-limited, i.e. one
  // completion per 8 cycles asymptotically.
  for (int i = 0; i < 8; ++i) {
    dram.Enqueue({static_cast<Addr>(i % 4), false, 0});        // bank 0
    if (dram.CanAccept()) {
      dram.Enqueue({static_cast<Addr>(4 + (i % 4)), false, 0});  // bank 1
    }
  }
  std::size_t total = 0;
  Cycle last = 0;
  for (Cycle now = 0; now < 2000 && !dram.Idle(); ++now) {
    const auto done = dram.Tick(now);
    total += done.size();
    if (!done.empty()) last = now;
  }
  ASSERT_GE(total, 8u);
  // 16 transfers x 8-cycle bursts ~ 128 cycles + initial latency.
  EXPECT_GE(last, 8u * total / 2);
}

TEST(Dram, IdleReflectsState) {
  DramChannel dram(SmallDram(), 128);
  EXPECT_TRUE(dram.Idle());
  dram.Enqueue({0, false, 0});
  EXPECT_FALSE(dram.Idle());
  RunUntil(dram, 1);
  EXPECT_TRUE(dram.Idle());
}

}  // namespace
}  // namespace dlpsim
