#include "mem/dram.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

DramConfig SmallDram() {
  DramConfig cfg;
  cfg.banks = 2;
  cfg.row_bytes = 512;  // 4 lines per row at 128B
  cfg.t_row_hit = 10;
  cfg.t_row_miss = 30;
  cfg.t_rc = 20;
  cfg.bus_bytes_per_cycle = 16;  // 8-cycle burst for a 128B line
  return cfg;
}

std::vector<DramChannel::Completion> RunUntil(DramChannel& dram,
                                              std::size_t count,
                                              Cycle max_cycles = 10000) {
  std::vector<DramChannel::Completion> done;
  for (Cycle now = 0; now < max_cycles && done.size() < count; ++now) {
    for (const auto& c : dram.Tick(now)) done.push_back(c);
  }
  return done;
}

TEST(Dram, BankAndRowMapping) {
  DramChannel dram(SmallDram(), 128);
  // 4 lines/row, 2 banks: lines 0-3 bank 0 row 0; 4-7 bank 1 row 0;
  // 8-11 bank 0 row 1.
  EXPECT_EQ(dram.BankOf(0), 0u);
  EXPECT_EQ(dram.BankOf(3), 0u);
  EXPECT_EQ(dram.BankOf(4), 1u);
  EXPECT_EQ(dram.BankOf(8), 0u);
  EXPECT_EQ(dram.RowOf(0), 0u);
  EXPECT_EQ(dram.RowOf(8), 1u);
}

TEST(Dram, SingleReadCompletesWithRowMissLatency) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 7});
  const auto done = RunUntil(dram, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 7u);
  EXPECT_FALSE(done[0].write);
  EXPECT_EQ(dram.row_misses, 1u);
  EXPECT_EQ(dram.row_hits, 0u);
}

TEST(Dram, SequentialLinesHitTheOpenRow) {
  DramChannel dram(SmallDram(), 128);
  for (Addr b = 0; b < 4; ++b) dram.Enqueue({b, false, b});
  RunUntil(dram, 4);
  EXPECT_EQ(dram.row_misses, 1u);  // first access opens the row
  EXPECT_EQ(dram.row_hits, 3u);
}

TEST(Dram, AlternatingRowsInOneBankMiss) {
  DramChannel dram(SmallDram(), 128);
  // Lines 0 and 8 share bank 0 but different rows.
  dram.Enqueue({0, false, 0});
  dram.Enqueue({8, false, 1});
  dram.Enqueue({0, false, 2});
  RunUntil(dram, 3);
  EXPECT_EQ(dram.row_misses, 3u);
}

TEST(Dram, FirstReadySchedulingSkipsBusyBank) {
  DramChannel dram(SmallDram(), 128);
  // Two requests to bank 0 (rows 0, 1) then one to bank 1: the bank-1
  // request must not wait behind the bank-0 row miss.
  dram.Enqueue({0, false, 0});
  dram.Enqueue({8, false, 1});
  dram.Enqueue({4, false, 2});
  const auto done = RunUntil(dram, 3);
  ASSERT_EQ(done.size(), 3u);
  // The bank-1 request (tag 2) overtakes the second bank-0 one (tag 1).
  EXPECT_EQ(done[0].tag, 0u);
  EXPECT_EQ(done[1].tag, 2u);
  EXPECT_EQ(done[2].tag, 1u);
}

TEST(Dram, WritesCompleteAndAreCounted) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, true, 0});
  const auto done = RunUntil(dram, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].write);
  EXPECT_EQ(dram.writes, 1u);
  EXPECT_EQ(dram.reads, 0u);
}

TEST(Dram, QueueCapacityBounds) {
  DramChannel dram(SmallDram(), 128);
  int accepted = 0;
  while (dram.CanAccept()) {
    dram.Enqueue({static_cast<Addr>(accepted), false, 0});
    ++accepted;
  }
  EXPECT_EQ(accepted, 32);
  EXPECT_FALSE(dram.CanAccept());
  RunUntil(dram, 1);
  EXPECT_TRUE(dram.CanAccept());
}

TEST(Dram, BusSerializesBackToBackBursts) {
  DramChannel dram(SmallDram(), 128);
  // Row hits in both banks: throughput should be bus-limited, i.e. one
  // completion per 8 cycles asymptotically.
  for (int i = 0; i < 8; ++i) {
    dram.Enqueue({static_cast<Addr>(i % 4), false, 0});        // bank 0
    if (dram.CanAccept()) {
      dram.Enqueue({static_cast<Addr>(4 + (i % 4)), false, 0});  // bank 1
    }
  }
  std::size_t total = 0;
  Cycle last = 0;
  for (Cycle now = 0; now < 2000 && !dram.Idle(); ++now) {
    const auto done = dram.Tick(now);
    total += done.size();
    if (!done.empty()) last = now;
  }
  ASSERT_GE(total, 8u);
  // 16 transfers x 8-cycle bursts ~ 128 cycles + initial latency.
  EXPECT_GE(last, 8u * total / 2);
}

std::vector<Cycle> CompletionCycles(DramChannel& dram, std::size_t count,
                                    Cycle start = 0, Cycle max_cycles = 10000) {
  std::vector<Cycle> cycles;
  for (Cycle now = start; now < max_cycles && cycles.size() < count; ++now) {
    for (std::size_t i = 0; i < dram.Tick(now).size(); ++i) {
      cycles.push_back(now);
    }
  }
  return cycles;
}

TEST(Dram, RowMissLatencyIsExactlyActivationPlusBurst) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 0});
  const auto cycles = CompletionCycles(dram, 1);
  ASSERT_EQ(cycles.size(), 1u);
  // Issued at cycle 0: t_row_miss(30) + 8-cycle burst on the data bus.
  EXPECT_EQ(cycles[0], 38u);
}

TEST(Dram, RowHitLatencyIsExactlyColumnAccessPlusBurst) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 0});
  ASSERT_EQ(CompletionCycles(dram, 1).size(), 1u);  // opens row 0 of bank 0
  // Re-request the open row once bank and bus are long idle: the only
  // cost left is t_row_hit(10) + burst(8), relative to the issue cycle.
  dram.Enqueue({1, false, 1});
  const auto cycles = CompletionCycles(dram, 1, /*start=*/100);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], 118u);
  EXPECT_EQ(dram.row_hits, 1u);
}

TEST(Dram, SecondMissToBusyBankWaitsForPrechargeWindow) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 0});  // bank 0 row 0: issued at 0, bank busy 28
  dram.Enqueue({8, false, 1});  // bank 0 row 1: can only issue at 28
  const auto cycles = CompletionCycles(dram, 2);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], 38u);
  // Issue at 28 (t_rc + burst occupancy), then 30 activation, then the
  // shared bus (free at 38 < 58) adds its 8-cycle burst: 66.
  EXPECT_EQ(cycles[1], 66u);
}

TEST(Dram, SharedBusSerializesCompletionsAcrossBanks) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 0});  // bank 0
  dram.Enqueue({4, false, 1});  // bank 1: issues at cycle 1, no bank conflict
  const auto cycles = CompletionCycles(dram, 2);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], 38u);
  // Bank-1 data is ready at 1 + 30 = 31 but the bus is occupied until
  // 38, so its burst lands at 46 -- not the contention-free 39.
  EXPECT_EQ(cycles[1], 46u);
}

TEST(Dram, SameBankSameRowRequestsCompleteInQueueOrder) {
  DramChannel dram(SmallDram(), 128);
  for (std::uint64_t tag = 0; tag < 6; ++tag) {
    dram.Enqueue({static_cast<Addr>(tag % 4), false, tag});
  }
  const auto done = RunUntil(dram, 6);
  ASSERT_EQ(done.size(), 6u);
  for (std::uint64_t tag = 0; tag < 6; ++tag) {
    EXPECT_EQ(done[tag].tag, tag) << "completion " << tag;
  }
}

TEST(Dram, QueueAndInServiceDepthsTrackIssue) {
  DramChannel dram(SmallDram(), 128);
  dram.Enqueue({0, false, 0});  // bank 0
  dram.Enqueue({4, false, 1});  // bank 1: issuable while bank 0 precharges
  EXPECT_EQ(dram.queue_depth(), 2u);
  EXPECT_EQ(dram.in_service_depth(), 0u);
  dram.Tick(0);  // issues exactly one command per cycle
  EXPECT_EQ(dram.queue_depth(), 1u);
  EXPECT_EQ(dram.in_service_depth(), 1u);
  dram.Tick(1);
  EXPECT_EQ(dram.queue_depth(), 0u);
  EXPECT_EQ(dram.in_service_depth(), 2u);
  RunUntil(dram, 2, 10000);
  EXPECT_EQ(dram.in_service_depth(), 0u);
}

TEST(Dram, IdleReflectsState) {
  DramChannel dram(SmallDram(), 128);
  EXPECT_TRUE(dram.Idle());
  dram.Enqueue({0, false, 0});
  EXPECT_FALSE(dram.Idle());
  RunUntil(dram, 1);
  EXPECT_TRUE(dram.Idle());
}

}  // namespace
}  // namespace dlpsim
