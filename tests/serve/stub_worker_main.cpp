// Minimal worker binary for the serve/ test suite: speaks the worker
// protocol on --worker-fd and answers from serve::StubRunner. Chaos
// directives are always honored (tests exist to inject faults).
#include <cstdlib>
#include <cstring>

#include "serve/worker.h"

int main(int argc, char** argv) {
  int fd = -1;
  bool chaos = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-chaos") == 0) {
      chaos = false;
    }
  }
  if (fd < 0) return 2;
  return dlpsim::serve::WorkerLoop(fd, dlpsim::serve::StubRunner, chaos);
}
