// Chaos suite (satellite of the serving PR): the server must survive
// 100+ injected worker crashes under concurrent load, retrying crashed
// requests behind the callers' backs, and surface budget-exhausting
// faults as structured typed failures -- never as lost requests or a
// dead server.
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace dlpsim::serve {
namespace {

namespace fs = std::filesystem;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    stem_ = "chaos_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++);
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(stem_ + ".cache", ec);
    fs::remove(stem_ + ".sock", ec);
  }

  void StartServer(std::size_t workers) {
    fs::create_directories(stem_ + ".cache");
    registry_ = std::make_unique<obs::Registry>();
    metrics_ = std::make_unique<ServeMetrics>(*registry_);
    ServerOptions opts;
    opts.socket_path = stem_ + ".sock";
    opts.worker.argv = {DLPSIM_STUB_WORKER};
    opts.workers = workers;
    opts.queue_capacity = 256;
    opts.budget.max_attempts = 3;
    opts.budget.backoff_ms = 1;
    opts.budget.deadline_ms = 20000;
    opts.cache_dir = stem_ + ".cache";
    opts.metrics = metrics_.get();
    opts.registry = registry_.get();
    server_ = std::make_unique<Server>(std::move(opts));
    std::string err;
    ASSERT_TRUE(server_->Start(&err)) << err;
  }

  std::string stem_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<ServeMetrics> metrics_;
  std::unique_ptr<Server> server_;
};

// The headline chaos invariant: 100+ worker crashes injected under
// 8-way concurrent load; zero lost requests, every crash retried to
// success, server and metrics coherent afterwards.
TEST_F(ChaosTest, Survives100CrashInjectionsUnderLoad) {
  StartServer(4);

  LoadGenOptions load;
  load.socket_path = stem_ + ".sock";
  load.requests = 500;
  load.concurrency = 8;
  load.seed = 42;
  load.chaos_pct = 25;  // ~125 crash:1 injections out of 500
  LoadGenStats stats;
  std::string err;
  ASSERT_TRUE(RunLoadGen(load, &stats, &err)) << err;

  // Count the injections the deterministic stream actually carries.
  std::uint64_t injected = 0;
  for (std::uint64_t i = 0; i < load.requests; ++i) {
    if (!MakeLoadGenRequest(load, i).chaos.empty()) ++injected;
  }
  ASSERT_GE(injected, 100u) << "stream carries too few injections";

  // Nothing lost, nothing stuck: every request came back ok ("crash:1"
  // faults succeed on the retry attempt).
  EXPECT_EQ(stats.sent, load.requests);
  EXPECT_TRUE(stats.accounted());
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_EQ(stats.ok, load.requests);
  EXPECT_EQ(stats.failed, 0u);

  // Every injection really did kill a worker process, and every death
  // was followed by a respawn.
  EXPECT_EQ(metrics_->worker_crashes->Value(), injected);
  EXPECT_EQ(metrics_->worker_restarts->Value(), injected);
  EXPECT_EQ(metrics_->retries->Value(), injected);

  // The server is still alive and serving.
  Client c;
  ASSERT_TRUE(c.Connect(stem_ + ".sock"));
  EXPECT_TRUE(c.Ping());
  ExperimentRequest r;
  r.id = 1;
  r.app = "echo";
  r.config = "x";
  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_TRUE(resp.ok()) << resp.detail;

  // Quiescent gauges.
  EXPECT_EQ(metrics_->queue_depth->Value(), 0);
  EXPECT_EQ(metrics_->inflight->Value(), 0);
}

// A fault that exhausts the whole retry budget must come back as a
// STRUCTURED failure -- typed kind, attempt count, crash evidence --
// not a hung connection or a lost request.
TEST_F(ChaosTest, BudgetExhaustingCrashSurfacesAsStructuredFailure) {
  StartServer(2);
  Client c;
  ASSERT_TRUE(c.Connect(stem_ + ".sock"));

  ExperimentRequest r;
  r.id = 77;
  r.app = "echo";
  r.config = "x";
  r.chaos = "crash:99";  // crashes on every attempt
  r.nocache = true;
  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error, robust::RunError::kWorkerCrash);
  EXPECT_EQ(resp.attempts, 3);
  EXPECT_EQ(resp.worker_crashes, 3);
  EXPECT_NE(resp.detail.find("signal 6"), std::string::npos) << resp.detail;
  EXPECT_EQ(metrics_->responses_failed->Value(), 1u);

  // The fault domain is rebuilt: the same connection serves clean work.
  r.chaos.clear();
  r.id = 78;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_TRUE(resp.ok()) << resp.detail;
}

// A wedged worker (spins past the deadline) is SIGKILLed and the
// request typed kDeadlineExceeded; the slot recovers.
TEST_F(ChaosTest, WedgedWorkerIsDeadlineKilledAndSlotRecovers) {
  StartServer(1);
  Client c;
  ASSERT_TRUE(c.Connect(stem_ + ".sock"));

  ExperimentRequest r;
  r.id = 1;
  r.app = "echo";
  r.config = "x";
  r.chaos = "spin:9";
  r.nocache = true;
  r.deadline_ms = 300;  // per-request deadline overrides the server's
  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_EQ(resp.error, robust::RunError::kDeadlineExceeded);
  EXPECT_EQ(resp.attempts, 1);  // deadline kills are never retried
  EXPECT_EQ(metrics_->deadline_kills->Value(), 1u);

  r.chaos.clear();
  r.deadline_ms = 0;
  r.id = 2;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_TRUE(resp.ok()) << resp.detail;
}

// Mixed clean/fault/failure traffic: the accounting invariant (every
// request ends exactly once, as ok or a typed failure) holds even when
// typed failures and crashes interleave with cacheable work.
TEST_F(ChaosTest, MixedFaultTrafficIsFullyAccounted) {
  StartServer(4);
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::vector<std::thread> threads;
  std::vector<LoadGenStats> per(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      if (!c.Connect(stem_ + ".sock")) {
        per[t].transport_errors = kPerClient;
        per[t].sent = kPerClient;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        ExperimentRequest r;
        r.id = static_cast<std::uint64_t>(t * kPerClient + i + 1);
        r.config = "x";
        switch (i % 4) {
          case 0: r.app = "echo"; break;
          case 1: r.app = "fail"; r.nocache = true; break;
          case 2: r.app = "echo"; r.chaos = "crash:1"; r.nocache = true;
                  break;
          case 3: r.app = "stubby"; break;  // cacheable across clients
        }
        ExperimentResponse resp;
        ++per[t].sent;
        if (!c.CallWithRetry(r, &resp, 200)) {
          ++per[t].transport_errors;
        } else if (resp.ok()) {
          ++per[t].ok;
        } else {
          ++per[t].failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  LoadGenStats total;
  for (const auto& s : per) {
    total.sent += s.sent;
    total.ok += s.ok;
    total.failed += s.failed;
    total.transport_errors += s.transport_errors;
  }
  EXPECT_EQ(total.sent, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_TRUE(total.accounted());
  EXPECT_EQ(total.transport_errors, 0u);
  // Exactly the "fail" slots (i % 4 == 1: six of 25 per client) fail
  // with a typed kind; everything else succeeds.
  EXPECT_EQ(total.failed, static_cast<std::uint64_t>(kClients * 6));
  EXPECT_EQ(metrics_->responses_ok->Value(), total.ok);
  EXPECT_EQ(metrics_->responses_failed->Value(), total.failed);
}

}  // namespace
}  // namespace dlpsim::serve
