// Frame protocol: round trips, malformed-header rejection, timeouts and
// EOF semantics over real socketpairs.
#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace dlpsim::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Protocol, RoundTripsPayloadVerbatim) {
  SocketPair sp;
  // 8-bit clean, including an embedded NUL.
  std::string payload = "id 7\napp BFS\n";
  payload.push_back('\0');
  payload += "binary\xff ok";
  ASSERT_TRUE(WriteFrame(sp.a, FrameType::kRequest, payload));

  FrameType type{};
  std::string got;
  ASSERT_EQ(ReadFrame(sp.b, &type, &got), ReadStatus::kOk);
  EXPECT_EQ(type, FrameType::kRequest);
  EXPECT_EQ(got, payload);
}

TEST(Protocol, RoundTripsEmptyPayloadAndEveryType) {
  SocketPair sp;
  for (const FrameType t :
       {FrameType::kRequest, FrameType::kResponse, FrameType::kMetricsRequest,
        FrameType::kMetricsReply, FrameType::kShutdown,
        FrameType::kShutdownAck, FrameType::kPing, FrameType::kPong}) {
    ASSERT_TRUE(WriteFrame(sp.a, t, ""));
    FrameType got{};
    std::string payload = "stale";
    ASSERT_EQ(ReadFrame(sp.b, &got, &payload), ReadStatus::kOk);
    EXPECT_EQ(got, t);
    EXPECT_TRUE(payload.empty());
  }
}

TEST(Protocol, SeveralFramesQueueOnOneSocket) {
  SocketPair sp;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        WriteFrame(sp.a, FrameType::kRequest, "n " + std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    FrameType type{};
    std::string payload;
    ASSERT_EQ(ReadFrame(sp.b, &type, &payload), ReadStatus::kOk);
    EXPECT_EQ(payload, "n " + std::to_string(i));
  }
}

TEST(Protocol, EofAtFrameBoundaryIsOrderly) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload), ReadStatus::kEof);
}

TEST(Protocol, EofMidFrameIsAnError) {
  SocketPair sp;
  // Half a header, then hang up -- a worker that died mid-write.
  const char partial[6] = {'D', 'L', 'P', 'S', 1, 0};
  ASSERT_EQ(::send(sp.a, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(sp.a);
  sp.a = -1;
  FrameType type{};
  std::string payload;
  std::string err;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload, &err), ReadStatus::kError);
  EXPECT_FALSE(err.empty());
}

TEST(Protocol, BadMagicIsMalformed) {
  SocketPair sp;
  unsigned char header[12] = {'X', 'X', 'X', 'X', 1, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload), ReadStatus::kMalformed);
}

TEST(Protocol, NonzeroReservedBitsAreMalformed) {
  SocketPair sp;
  unsigned char header[12] = {'D', 'L', 'P', 'S', 1, 7, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload), ReadStatus::kMalformed);
}

TEST(Protocol, OversizedLengthRejectedBeforeAllocation) {
  SocketPair sp;
  // 4 GiB-ish length prefix; must be rejected without trying to read
  // (or allocate) the body.
  unsigned char header[12] = {'D', 'L', 'P', 'S', 1,    0,
                              0,   0,   0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload), ReadStatus::kMalformed);
}

TEST(Protocol, TimeoutWhenNoFrameArrives) {
  SocketPair sp;
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload, nullptr, /*timeout_ms=*/50),
            ReadStatus::kTimeout);
}

TEST(Protocol, TimeoutMidFrame) {
  SocketPair sp;
  // A complete header promising 100 bytes that never arrive.
  unsigned char header[12] = {'D', 'L', 'P', 'S', 1, 0, 0, 0, 100, 0, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameType type{};
  std::string payload;
  EXPECT_EQ(ReadFrame(sp.b, &type, &payload, nullptr, /*timeout_ms=*/50),
            ReadStatus::kTimeout);
}

TEST(Protocol, WriteToClosedPeerFailsWithoutSigpipe) {
  SocketPair sp;
  ::close(sp.b);
  sp.b = -1;
  // First write may succeed into the kernel buffer; keep writing until
  // EPIPE surfaces. If SIGPIPE were not suppressed this would kill the
  // test process instead of returning false.
  std::string err;
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !WriteFrame(sp.a, FrameType::kPing, std::string(4096, 'x'), &err);
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(err.empty());
}

TEST(Protocol, LargePayloadCrossesPartialSends) {
  SocketPair sp;
  // Bigger than any socket buffer: forces partial send/recv loops.
  std::string payload(1 << 22, 'p');  // 4 MiB
  for (std::size_t i = 0; i < payload.size(); i += 4097) payload[i] = 'q';

  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrame(sp.a, FrameType::kResponse, payload)); });
  FrameType type{};
  std::string got;
  EXPECT_EQ(ReadFrame(sp.b, &type, &got), ReadStatus::kOk);
  writer.join();
  EXPECT_EQ(got, payload);
}

TEST(Protocol, ToStringsAreStable) {
  EXPECT_STREQ(ToString(FrameType::kRequest), "request");
  EXPECT_STREQ(ToString(ReadStatus::kTimeout), "timeout");
  EXPECT_STREQ(ToString(ReadStatus::kMalformed), "malformed");
}

}  // namespace
}  // namespace dlpsim::serve
