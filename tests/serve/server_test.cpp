// End-to-end server tests over a real AF_UNIX socket with fork/exec'd
// stub workers: serving, caching + single-flight, admission control,
// graceful drain, metrics exposition.
#include "serve/server.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"

namespace dlpsim::serve {
namespace {

namespace fs = std::filesystem;

/// One isolated server per fixture: own registry (metric counts start
/// at zero), own socket path, own cache dir; everything cleaned up.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    stem_ = "sv_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++);
    fs::create_directories(stem_ + ".cache");
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(stem_ + ".cache", ec);
    fs::remove(stem_ + ".sock", ec);
  }

  void StartServer(std::size_t workers, std::size_t queue,
                   bool with_cache = true,
                   std::uint64_t deadline_ms = 20000) {
    registry_ = std::make_unique<obs::Registry>();
    metrics_ = std::make_unique<ServeMetrics>(*registry_);
    ServerOptions opts;
    opts.socket_path = stem_ + ".sock";
    opts.worker.argv = {DLPSIM_STUB_WORKER};
    opts.workers = workers;
    opts.queue_capacity = queue;
    opts.budget.max_attempts = 3;
    opts.budget.backoff_ms = 1;
    opts.budget.deadline_ms = deadline_ms;
    opts.retry_after_ms = 5;
    if (with_cache) opts.cache_dir = stem_ + ".cache";
    opts.metrics = metrics_.get();
    opts.registry = registry_.get();
    server_ = std::make_unique<Server>(std::move(opts));
    std::string err;
    ASSERT_TRUE(server_->Start(&err)) << err;
  }

  Client Connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.Connect(stem_ + ".sock", &err)) << err;
    return c;
  }

  static ExperimentRequest Req(std::uint64_t id, const std::string& app,
                               const std::string& config = "x") {
    ExperimentRequest r;
    r.id = id;
    r.app = app;
    r.config = config;
    return r;
  }

  std::string stem_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<ServeMetrics> metrics_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ServesARequestEndToEnd) {
  StartServer(2, 16);
  Client c = Connect();
  ExperimentResponse resp;
  std::string err;
  ASSERT_TRUE(c.Call(Req(7, "echo"), &resp, &err)) << err;
  EXPECT_TRUE(resp.ok()) << resp.detail;
  EXPECT_EQ(resp.id, 7u);
  EXPECT_EQ(resp.result, "echo 7\n");
  EXPECT_FALSE(resp.cached);
  EXPECT_EQ(metrics_->requests_total->Value(), 1u);
  EXPECT_EQ(metrics_->responses_ok->Value(), 1u);
}

TEST_F(ServerTest, PingPong) {
  StartServer(1, 4);
  Client c = Connect();
  std::string err;
  EXPECT_TRUE(c.Ping(&err)) << err;
}

TEST_F(ServerTest, SecondIdenticalRequestIsACacheHit) {
  StartServer(2, 16);
  Client c = Connect();
  ExperimentResponse first;
  ExperimentResponse second;
  ASSERT_TRUE(c.Call(Req(1, "stubby"), &first));
  ASSERT_TRUE(c.Call(Req(2, "stubby"), &second));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.result, first.result);
  EXPECT_EQ(second.id, 2u);  // response re-stamped with the caller's id
  EXPECT_EQ(metrics_->cache_hits->Value(), 1u);
  EXPECT_EQ(metrics_->cache_stores->Value(), 1u);
  EXPECT_EQ(metrics_->runs_executed->Value(), 1u);
}

TEST_F(ServerTest, NocacheRequestBypassesTheCache) {
  StartServer(1, 16);
  Client c = Connect();
  ExperimentRequest r = Req(1, "stubby");
  r.nocache = true;
  ExperimentResponse a;
  ExperimentResponse b;
  ASSERT_TRUE(c.Call(r, &a));
  ASSERT_TRUE(c.Call(r, &b));
  EXPECT_FALSE(a.cached);
  EXPECT_FALSE(b.cached);
  EXPECT_EQ(metrics_->cache_hits->Value(), 0u);
  EXPECT_EQ(metrics_->runs_executed->Value(), 2u);
}

TEST_F(ServerTest, ConcurrentDuplicatesCoalesceToOneExecution) {
  StartServer(4, 64);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<ExperimentResponse> resps(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Connect();
      // "work 150" is slow enough that all 8 arrive while the first
      // executes; single-flight must coalesce them onto one run.
      c.Call(Req(static_cast<std::uint64_t>(i + 1), "work", "150"),
             &resps[i]);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(resps[i].ok()) << resps[i].detail;
    EXPECT_EQ(resps[i].id, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(metrics_->runs_executed->Value(), 1u);
  EXPECT_EQ(metrics_->cache_hits->Value(), static_cast<std::uint64_t>(
                                               kClients - 1));
}

TEST_F(ServerTest, FullQueueRejectsWithRetryAfter) {
  // One worker, queue of one: concurrent slow requests must overflow.
  StartServer(1, 1);
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<ExperimentResponse> resps(kClients);
  std::vector<bool> transported(kClients, false);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Connect();
      ExperimentRequest r = Req(static_cast<std::uint64_t>(i + 1), "work",
                                "200");
      r.nocache = true;  // defeat single-flight so each occupies a slot
      transported[i] = c.Call(r, &resps[i]);
    });
  }
  for (auto& t : threads) t.join();

  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(transported[i]);
    if (resps[i].ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resps[i].error, robust::RunError::kQueueRejected);
      EXPECT_EQ(resps[i].retry_after_ms, 5u);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kClients);  // every request got a response
  EXPECT_GE(rejected, 1);
  EXPECT_GE(ok, 1);  // at least whoever won the queue slot
  EXPECT_EQ(metrics_->rejected_queue_full->Value(),
            static_cast<std::uint64_t>(rejected));
}

TEST_F(ServerTest, RejectedClientSucceedsViaRetryLoop) {
  StartServer(1, 1);
  constexpr int kClients = 5;
  std::vector<std::thread> threads;
  std::vector<ExperimentResponse> resps(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Connect();
      ExperimentRequest r = Req(static_cast<std::uint64_t>(i + 1), "work",
                                "50");
      r.nocache = true;
      c.CallWithRetry(r, &resps[i], /*max_retries=*/200);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(resps[i].ok()) << resps[i].detail;  // backpressure, not loss
  }
}

TEST_F(ServerTest, MetricsExpositionOverTheWire) {
  StartServer(1, 4);
  Client c = Connect();
  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(Req(1, "echo"), &resp));

  std::string det;
  std::string prom;
  std::string json;
  ASSERT_TRUE(c.FetchMetrics("deterministic", &det));
  ASSERT_TRUE(c.FetchMetrics("prom", &prom));
  ASSERT_TRUE(c.FetchMetrics("json", &json));
  EXPECT_NE(det.find("# serve-metrics v1"), std::string::npos);
  EXPECT_NE(det.find("responses_ok 1"), std::string::npos);
  // Wall-clock scope is excluded from the deterministic dump but
  // present in the Prometheus exposition.
  EXPECT_EQ(det.find("latency_us"), std::string::npos);
  EXPECT_NE(prom.find("dlpsim_serve_wall_latency_us"), std::string::npos);
  EXPECT_NE(prom.find("dlpsim_serve_responses_ok"), std::string::npos);
  EXPECT_NE(json.find("responses_ok"), std::string::npos);
}

TEST_F(ServerTest, TypedFailureReachesTheClient) {
  StartServer(1, 4);
  Client c = Connect();
  ExperimentRequest r = Req(1, "fail");
  r.nocache = true;
  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_EQ(resp.error, robust::RunError::kRunFailed);
  EXPECT_EQ(resp.detail, "synthetic failure");
  EXPECT_EQ(resp.attempts, 3);
  EXPECT_EQ(metrics_->responses_failed->Value(), 1u);
}

TEST_F(ServerTest, MalformedRequestGetsTypedResponseNotDisconnect) {
  StartServer(1, 4);
  Client c = Connect();
  ExperimentResponse resp;
  // Missing config: the server answers kRunFailed instead of dropping
  // the connection.
  ExperimentRequest r;
  r.id = 1;
  r.app = "echo";
  ASSERT_TRUE(c.Call(r, &resp));
  EXPECT_EQ(resp.error, robust::RunError::kRunFailed);
  EXPECT_NE(resp.detail.find("bad request"), std::string::npos);
  // The connection still works.
  ASSERT_TRUE(c.Call(Req(2, "echo", "x"), &resp));
  EXPECT_TRUE(resp.ok());
}

TEST_F(ServerTest, ShutdownFrameBeginsDrainAndRejectsNewWork) {
  StartServer(1, 4);
  Client c = Connect();
  std::string err;
  ASSERT_TRUE(c.Shutdown(&err)) << err;
  EXPECT_TRUE(server_->draining());

  ExperimentResponse resp;
  ASSERT_TRUE(c.Call(Req(1, "echo"), &resp));
  EXPECT_EQ(resp.error, robust::RunError::kQueueRejected);
  EXPECT_NE(resp.detail.find("draining"), std::string::npos);
  EXPECT_EQ(metrics_->rejected_draining->Value(), 1u);

  server_->Stop();
  // The socket is gone: a fresh connect must fail.
  Client late;
  EXPECT_FALSE(late.Connect(stem_ + ".sock"));
}

TEST_F(ServerTest, StopDrainsInflightWorkBeforeExiting) {
  StartServer(2, 32);
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<ExperimentResponse> resps(kClients);
  std::vector<bool> transported(kClients, false);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Connect();
      ExperimentRequest r = Req(static_cast<std::uint64_t>(i + 1), "work",
                                "100");
      r.nocache = true;
      transported[i] = c.Call(r, &resps[i]);
    });
  }
  // Give the requests time to be admitted, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Stop();
  for (auto& t : threads) t.join();

  // Drain contract: every ADMITTED request is answered before teardown.
  // (All six were sent before Stop(), so each either got served or --
  // had it raced the drain flag -- was rejected as draining; none may
  // see a dead socket.)
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(transported[i]) << "request " << i << " lost in drain";
    EXPECT_TRUE(resps[i].ok() ||
                resps[i].error == robust::RunError::kQueueRejected)
        << resps[i].detail;
  }
  // Gauges are exactly zero at quiescence.
  EXPECT_EQ(metrics_->queue_depth->Value(), 0);
  EXPECT_EQ(metrics_->inflight->Value(), 0);
}

TEST_F(ServerTest, WorkerCountDoesNotChangeCacheBytes) {
  // Satellite: the same request set at workers=1 and workers=8 must
  // leave byte-identical content-addressed cache trees.
  auto run_grid = [&](std::size_t workers, const std::string& cache_dir) {
    fs::create_directories(cache_dir);
    obs::Registry reg;
    ServeMetrics metrics(reg);
    ServerOptions opts;
    opts.socket_path = stem_ + ".sock";
    opts.worker.argv = {DLPSIM_STUB_WORKER};
    opts.workers = workers;
    opts.queue_capacity = 128;
    opts.cache_dir = cache_dir;
    opts.metrics = &metrics;
    opts.registry = &reg;
    Server server(std::move(opts));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;

    LoadGenOptions load;
    load.socket_path = stem_ + ".sock";
    load.requests = 120;
    load.concurrency = workers == 1 ? 1 : 8;
    load.seed = 99;
    LoadGenStats stats;
    ASSERT_TRUE(RunLoadGen(load, &stats, &err)) << err;
    EXPECT_EQ(stats.ok, stats.sent);
    server.Stop();
  };

  const std::string dir1 = stem_ + ".cache1";
  const std::string dir8 = stem_ + ".cache8";
  run_grid(1, dir1);
  run_grid(8, dir8);

  std::map<std::string, std::string> tree1;
  std::map<std::string, std::string> tree8;
  auto slurp = [](const std::string& dir,
                  std::map<std::string, std::string>* out) {
    for (const auto& e : fs::directory_iterator(dir)) {
      std::ifstream in(e.path(), std::ios::binary);
      (*out)[e.path().filename().string()].assign(
          std::istreambuf_iterator<char>(in), {});
    }
  };
  slurp(dir1, &tree1);
  slurp(dir8, &tree8);
  EXPECT_FALSE(tree1.empty());
  EXPECT_EQ(tree1, tree8);  // same names, same bytes

  std::error_code ec;
  fs::remove_all(dir1, ec);
  fs::remove_all(dir8, ec);
}

}  // namespace
}  // namespace dlpsim::serve
