// Request/response wire grammar: round trips, payload separation,
// sanitization and hostile-input rejection.
#include "serve/request.h"

#include <gtest/gtest.h>

namespace dlpsim::serve {
namespace {

TEST(Request, RoundTripsEveryField) {
  ExperimentRequest r;
  r.id = 42;
  r.app = "BFS";
  r.config = "dlp";
  r.scale = 0.25;
  r.deadline_ms = 1500;
  r.watchdog_cycles = 200000;
  r.faults = "seed=7,count=16";
  r.chaos = "crash:2";
  r.nocache = true;
  r.attempt = 3;

  ExperimentRequest got;
  std::string err;
  ASSERT_TRUE(ExperimentRequest::Parse(r.Serialize(), &got, &err)) << err;
  EXPECT_EQ(got.id, 42u);
  EXPECT_EQ(got.app, "BFS");
  EXPECT_EQ(got.config, "dlp");
  EXPECT_DOUBLE_EQ(got.scale, 0.25);
  EXPECT_EQ(got.deadline_ms, 1500u);
  EXPECT_EQ(got.watchdog_cycles, 200000u);
  EXPECT_EQ(got.faults, "seed=7,count=16");
  EXPECT_EQ(got.chaos, "crash:2");
  EXPECT_TRUE(got.nocache);
  EXPECT_EQ(got.attempt, 3);
}

TEST(Request, DefaultsSurviveRoundTrip) {
  ExperimentRequest r;
  r.app = "NW";
  r.config = "base";
  ExperimentRequest got;
  ASSERT_TRUE(ExperimentRequest::Parse(r.Serialize(), &got));
  EXPECT_EQ(got.deadline_ms, 0u);
  EXPECT_EQ(got.watchdog_cycles, 0u);
  EXPECT_TRUE(got.faults.empty());
  EXPECT_TRUE(got.chaos.empty());
  EXPECT_FALSE(got.nocache);
  EXPECT_EQ(got.attempt, 1);
}

TEST(Request, RejectsMissingOrHostileFields) {
  ExperimentRequest got;
  std::string err;
  EXPECT_FALSE(ExperimentRequest::Parse("config dlp\n", &got, &err));
  EXPECT_EQ(err, "missing app");
  EXPECT_FALSE(ExperimentRequest::Parse("app BFS\n", &got, &err));
  EXPECT_EQ(err, "missing config");
  EXPECT_FALSE(
      ExperimentRequest::Parse("app B\nconfig c\nscale -1\n", &got, &err));
  EXPECT_FALSE(
      ExperimentRequest::Parse("app B\nconfig c\nscale zero\n", &got, &err));
  EXPECT_FALSE(
      ExperimentRequest::Parse("app B\nconfig c\nattempt 0\n", &got, &err));
  EXPECT_FALSE(
      ExperimentRequest::Parse("app B\nconfig c\nattempt 1001\n", &got, &err));
  EXPECT_FALSE(
      ExperimentRequest::Parse("app B\nconfig c\nid 12x\n", &got, &err));
}

TEST(Request, UnknownKeysAreIgnoredForForwardCompat) {
  ExperimentRequest got;
  ASSERT_TRUE(ExperimentRequest::Parse(
      "app BFS\nconfig dlp\nfuture_knob on\n\n", &got));
  EXPECT_EQ(got.app, "BFS");
}

TEST(Request, SanitizeStripsLineBreaks) {
  EXPECT_EQ(SanitizeValue("a\nb\rc"), "a b c");
  ExperimentRequest r;
  r.app = "BFS\ninjected key";
  r.config = "dlp";
  ExperimentRequest got;
  ASSERT_TRUE(ExperimentRequest::Parse(r.Serialize(), &got));
  EXPECT_EQ(got.app, "BFS injected key");  // no field injection
}

TEST(Response, RoundTripsOkWithResultPayload) {
  ExperimentResponse r;
  r.id = 9;
  r.error = robust::RunError::kNone;
  r.attempts = 1;
  // The real payload format embeds its own "---" separator between
  // metrics and profile text; the wire split must only use the FIRST.
  r.result = "ipc 1.5\nmisses 10\n---\nrdd 1 2 3\n";

  ExperimentResponse got;
  std::string err;
  ASSERT_TRUE(ExperimentResponse::Parse(r.Serialize(), &got, &err)) << err;
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.id, 9u);
  EXPECT_EQ(got.result, "ipc 1.5\nmisses 10\n---\nrdd 1 2 3\n");
}

TEST(Response, RoundTripsTypedFailure) {
  ExperimentResponse r;
  r.id = 3;
  r.error = robust::RunError::kWorkerCrash;
  r.detail = "signal 9 after 3 attempts";
  r.attempts = 3;
  r.worker_crashes = 3;

  ExperimentResponse got;
  ASSERT_TRUE(ExperimentResponse::Parse(r.Serialize(), &got));
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.error, robust::RunError::kWorkerCrash);
  EXPECT_EQ(got.detail, "signal 9 after 3 attempts");
  EXPECT_EQ(got.attempts, 3);
  EXPECT_EQ(got.worker_crashes, 3);
  EXPECT_TRUE(got.result.empty());
}

TEST(Response, RoundTripsRejection) {
  ExperimentResponse r;
  r.id = 5;
  r.error = robust::RunError::kQueueRejected;
  r.detail = "admission queue full (64)";
  r.retry_after_ms = 50;

  ExperimentResponse got;
  ASSERT_TRUE(ExperimentResponse::Parse(r.Serialize(), &got));
  EXPECT_EQ(got.error, robust::RunError::kQueueRejected);
  EXPECT_EQ(got.retry_after_ms, 50u);
}

TEST(Response, RejectsUnknownErrorKindAndMissingError) {
  ExperimentResponse got;
  std::string err;
  EXPECT_FALSE(ExperimentResponse::Parse("id 1\nerror not_a_kind\n", &got,
                                         &err));
  EXPECT_NE(err.find("unknown error kind"), std::string::npos);
  EXPECT_FALSE(ExperimentResponse::Parse("id 1\nattempts 1\n", &got, &err));
  EXPECT_EQ(err, "missing error field");
}

TEST(Response, CachedFlagRoundTrips) {
  ExperimentResponse r;
  r.error = robust::RunError::kNone;
  r.cached = true;
  r.result = "x\n";
  ExperimentResponse got;
  ASSERT_TRUE(ExperimentResponse::Parse(r.Serialize(), &got));
  EXPECT_TRUE(got.cached);
}

TEST(Response, PayloadStartingWithSeparatorLine) {
  // A response whose serialized text BEGINS with "---" (no headers)
  // must not crash the parser; it fails on the missing error field.
  ExperimentResponse got;
  EXPECT_FALSE(ExperimentResponse::Parse("---\npayload\n", &got));
}

}  // namespace
}  // namespace dlpsim::serve
