// Exhaustive RunError <-> string round trip (satellite of the serving
// PR: every request-level failure kind must survive the wire protocol).
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "robust/error.h"

namespace dlpsim::robust {
namespace {

TEST(RunErrorRoundTrip, EveryKindRoundTripsThroughItsName) {
  for (const RunError e : kAllRunErrors) {
    const char* name = ToString(e);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "unnamed RunError value "
                            << static_cast<int>(e);
    RunError parsed = RunError::kNone;
    EXPECT_TRUE(ParseRunError(name, &parsed)) << name;
    EXPECT_EQ(parsed, e) << name;
  }
}

TEST(RunErrorRoundTrip, NamesAreUniqueAndExhaustive) {
  std::set<std::string> names;
  for (const RunError e : kAllRunErrors) names.insert(ToString(e));
  EXPECT_EQ(names.size(), kAllRunErrors.size());

  // kAllRunErrors must cover the enum: probing values beyond the array
  // must hit the "?" fallback, i.e. there is no named value the array
  // does not list.
  const auto beyond =
      static_cast<RunError>(static_cast<int>(kAllRunErrors.size()));
  EXPECT_STREQ(ToString(beyond), "?");
}

TEST(RunErrorRoundTrip, ServeKindsHaveTheDocumentedNames) {
  EXPECT_STREQ(ToString(RunError::kWorkerCrash), "worker_crash");
  EXPECT_STREQ(ToString(RunError::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(ToString(RunError::kQueueRejected), "queue_rejected");
}

TEST(RunErrorRoundTrip, ParseRejectsUnknownNames) {
  RunError out = RunError::kCycleBudget;
  EXPECT_FALSE(ParseRunError("", &out));
  EXPECT_FALSE(ParseRunError("nonesuch", &out));
  EXPECT_FALSE(ParseRunError("None", &out));           // case-sensitive
  EXPECT_FALSE(ParseRunError("worker_crash ", &out));  // no trimming
  EXPECT_FALSE(ParseRunError("?", &out));  // fallback text is not a name
  EXPECT_EQ(out, RunError::kCycleBudget);  // untouched on failure
}

TEST(RunErrorRoundTrip, ExceptionCarriesKindAndMessage) {
  const RunErrorException e(RunError::kWatchdogStall, "no progress");
  EXPECT_EQ(e.kind(), RunError::kWatchdogStall);
  EXPECT_STREQ(e.what(), "no progress");
  // It is a runtime_error, so generic catch sites keep working.
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&e), nullptr);
}

}  // namespace
}  // namespace dlpsim::robust
