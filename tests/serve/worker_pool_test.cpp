// Fault-domain worker slots: ok runs, typed failures as data, crash
// retry with respawn, external SIGKILL mid-request, deadline
// enforcement against wedged workers, and exec-failure surfacing.
//
// DLPSIM_STUB_WORKER is the serve_stub_worker binary path, injected by
// tests/CMakeLists.txt.
#include "serve/worker_pool.h"

#include <signal.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/worker.h"

namespace dlpsim::serve {
namespace {

WorkerSpec StubSpec() { return WorkerSpec{{DLPSIM_STUB_WORKER}}; }

ExperimentRequest Req(const std::string& app, const std::string& config = "x",
                      const std::string& chaos = "") {
  ExperimentRequest r;
  r.id = 1;
  r.app = app;
  r.config = config;
  r.chaos = chaos;
  return r;
}

RetryBudget FastBudget() {
  RetryBudget b;
  b.max_attempts = 3;
  b.backoff_ms = 1;
  b.deadline_ms = 20000;
  return b;
}

TEST(WorkerSlot, ServesARequest) {
  WorkerSlot slot;
  const ExperimentResponse resp =
      slot.Execute(StubSpec(), Req("echo"), FastBudget(), nullptr);
  EXPECT_TRUE(resp.ok()) << resp.detail;
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_EQ(resp.worker_crashes, 0);
  EXPECT_EQ(resp.result, "echo 1\n");
  EXPECT_TRUE(slot.alive());  // worker is reused across requests
}

TEST(WorkerSlot, ReusesOneWorkerAcrossRequests) {
  WorkerSlot slot;
  ASSERT_TRUE(slot.Execute(StubSpec(), Req("echo"), FastBudget(), nullptr)
                  .ok());
  const pid_t pid = slot.pid();
  ASSERT_TRUE(slot.Execute(StubSpec(), Req("echo"), FastBudget(), nullptr)
                  .ok());
  EXPECT_EQ(slot.pid(), pid);
}

TEST(WorkerSlot, TypedFailureIsRetriedThenSurfacedWithKind) {
  WorkerSlot slot;
  const ExperimentResponse resp =
      slot.Execute(StubSpec(), Req("fail"), FastBudget(), nullptr);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error, robust::RunError::kRunFailed);
  EXPECT_EQ(resp.detail, "synthetic failure");
  EXPECT_EQ(resp.attempts, 3);  // deterministic failure burned the budget
  EXPECT_EQ(resp.worker_crashes, 0);
  EXPECT_TRUE(slot.alive());  // failure-as-data never kills the worker
}

TEST(WorkerSlot, WatchdogKindPassesThroughVerbatim) {
  WorkerSlot slot;
  const ExperimentResponse resp =
      slot.Execute(StubSpec(), Req("stall"), FastBudget(), nullptr);
  EXPECT_EQ(resp.error, robust::RunError::kWatchdogStall);
  EXPECT_EQ(resp.detail, "synthetic stall");
}

TEST(WorkerSlot, CrashOnFirstAttemptIsRetriedToSuccess) {
  WorkerSlot slot;
  const ExperimentResponse resp =
      slot.Execute(StubSpec(), Req("echo", "x", "crash:1"), FastBudget(),
                   nullptr);
  EXPECT_TRUE(resp.ok()) << resp.detail;
  EXPECT_EQ(resp.attempts, 2);
  EXPECT_EQ(resp.worker_crashes, 1);
  EXPECT_EQ(resp.result, "echo 1\n");
  // The death was recorded with its signal (abort => SIGABRT).
  EXPECT_EQ(slot.last_death(), "signal 6");
}

TEST(WorkerSlot, CleanExitChaosAlsoCountsAsCrash) {
  WorkerSlot slot;
  const ExperimentResponse resp = slot.Execute(
      StubSpec(), Req("echo", "x", "exit:1"), FastBudget(), nullptr);
  EXPECT_TRUE(resp.ok()) << resp.detail;
  EXPECT_EQ(resp.worker_crashes, 1);
  EXPECT_EQ(slot.last_death(), "exit 3");
}

TEST(WorkerSlot, PersistentCrashExhaustsBudgetAsWorkerCrash) {
  WorkerSlot slot;
  const ExperimentResponse resp = slot.Execute(
      StubSpec(), Req("echo", "x", "crash:99"), FastBudget(), nullptr);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error, robust::RunError::kWorkerCrash);
  EXPECT_EQ(resp.attempts, 3);
  EXPECT_EQ(resp.worker_crashes, 3);
  EXPECT_NE(resp.detail.find("signal 6"), std::string::npos) << resp.detail;
}

TEST(WorkerSlot, ExternalSigkillMidRequestIsRetried) {
  WorkerSlot slot;
  std::string err;
  ASSERT_TRUE(slot.Spawn(StubSpec(), &err)) << err;
  const pid_t victim = slot.pid();

  ExperimentResponse resp;
  std::thread runner([&] {
    // "work 500": the stub sleeps 500ms before responding, leaving a
    // wide window for the kill below to land mid-request.
    resp = slot.Execute(StubSpec(), Req("work", "500"), FastBudget(),
                        nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  runner.join();

  EXPECT_TRUE(resp.ok()) << resp.detail;
  EXPECT_GE(resp.worker_crashes, 1);
  EXPECT_GE(resp.attempts, 2);
  EXPECT_NE(slot.pid(), victim);  // respawned into a fresh fault domain
}

TEST(WorkerSlot, WedgedWorkerIsKilledOnDeadline) {
  WorkerSlot slot;
  RetryBudget budget = FastBudget();
  budget.deadline_ms = 300;
  const ExperimentResponse resp = slot.Execute(
      StubSpec(), Req("echo", "x", "spin:9"), budget, nullptr);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error, robust::RunError::kDeadlineExceeded);
  EXPECT_EQ(resp.attempts, 1);  // deadline failures are never retried
  EXPECT_FALSE(slot.alive());   // the wedged worker was SIGKILLed
  EXPECT_EQ(slot.last_death(), "signal 9");
}

TEST(WorkerSlot, ExecFailureSurfacesAsWorkerCrash) {
  WorkerSlot slot;
  const WorkerSpec bad{{"/nonexistent/worker/binary"}};
  RetryBudget budget = FastBudget();
  const ExperimentResponse resp =
      slot.Execute(bad, Req("echo"), budget, nullptr);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error, robust::RunError::kWorkerCrash);
  // The child _exit(127)s when exec fails; that status is the evidence.
  EXPECT_NE(resp.detail.find("exit 127"), std::string::npos) << resp.detail;
}

TEST(WorkerPool, OwnsIndependentSlots) {
  WorkerPool pool(StubSpec(), 4);
  ASSERT_EQ(pool.size(), 4u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const ExperimentResponse resp =
        pool.slot(i).Execute(pool.spec(), Req("echo"), FastBudget(), nullptr);
    EXPECT_TRUE(resp.ok()) << resp.detail;
  }
  // Four live workers, all distinct processes.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_NE(pool.slot(i).pid(), pool.slot(j).pid());
    }
  }
}

}  // namespace
}  // namespace dlpsim::serve
