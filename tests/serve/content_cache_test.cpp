// Content-addressed result cache: key composition (config hash x trace
// hash x binary version), invalidation on version bump, atomic store
// discipline, and CanonicalText sensitivity to every config layer.
#include "serve/content_cache.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/config.h"

namespace dlpsim::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::path("cc_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

TEST(ContentKey, HasThreeComponentsAndIsStable) {
  const std::string k = ContentKey("cfg text", "trace ref");
  // 16 hex chars x 3, dash-joined.
  ASSERT_EQ(k.size(), 16u * 3 + 2);
  EXPECT_EQ(k[16], '-');
  EXPECT_EQ(k[33], '-');
  EXPECT_EQ(k, ContentKey("cfg text", "trace ref"));  // deterministic
}

TEST(ContentKey, EachComponentKeysIndependently) {
  const std::string base = ContentKey("cfg", "trace", "v1");
  const std::string cfg2 = ContentKey("cfg2", "trace", "v1");
  const std::string trace2 = ContentKey("cfg", "trace2", "v1");
  const std::string ver2 = ContentKey("cfg", "trace", "v2");

  // Changing one input changes exactly that component.
  EXPECT_NE(base.substr(0, 16), cfg2.substr(0, 16));
  EXPECT_EQ(base.substr(16), cfg2.substr(16));

  EXPECT_NE(base.substr(17, 16), trace2.substr(17, 16));
  EXPECT_EQ(base.substr(0, 16), trace2.substr(0, 16));

  EXPECT_NE(base.substr(34), ver2.substr(34));
  EXPECT_EQ(base.substr(0, 33), ver2.substr(0, 33));
}

TEST(ContentKey, BinaryVersionBumpInvalidates) {
  TempDir tmp;
  ContentCache cache(tmp.path());
  const std::string payload = "metrics\n---\nprofile\n";

  const std::string k_old = ContentKey("cfg", "trace", "dlpsim-serve-0");
  const std::string k_cur = ContentKey("cfg", "trace", BinaryVersion());
  EXPECT_NE(k_old, k_cur);

  ASSERT_TRUE(cache.Store(k_old, payload));
  // The entry stored under the old binary version is invisible at the
  // current version's key: a rebuilt server re-simulates.
  EXPECT_FALSE(cache.Load(k_cur).has_value());
  EXPECT_TRUE(cache.Load(k_old).has_value());
}

TEST(ContentCache, StoreThenLoadRoundTrips) {
  TempDir tmp;
  ContentCache cache(tmp.path());
  EXPECT_TRUE(cache.enabled());
  const std::string key = ContentKey("c", "t");
  const std::string payload = "a 1\nb 2\n---\nrdd 0 1\n";

  EXPECT_FALSE(cache.Load(key).has_value());
  ASSERT_TRUE(cache.Store(key, payload));
  const auto got = cache.Load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // footer stripped, payload byte-exact
}

TEST(ContentCache, TruncatedEntryIsAMiss) {
  TempDir tmp;
  ContentCache cache(tmp.path());
  const std::string key = ContentKey("c", "t");
  ASSERT_TRUE(cache.Store(key, "payload\n"));

  // Chop the "#complete" footer: simulates a writer killed mid-write in
  // a pre-atomic-rename world; the reader must treat it as missing.
  const fs::path p = cache.PathFor(key);
  std::string text;
  {
    std::ifstream in(p, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(text.size(), 4u);
  {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() - 4);
  }
  EXPECT_FALSE(cache.Load(key).has_value());
}

TEST(ContentCache, DisabledWhenDirEmpty) {
  ContentCache cache{fs::path()};
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.Load(ContentKey("c", "t")).has_value());
  EXPECT_FALSE(cache.Store(ContentKey("c", "t"), "x"));
}

TEST(WorkloadTraceRefTest, EncodesAppAndScale) {
  const std::string a = WorkloadTraceRef("BFS", 1.0);
  EXPECT_NE(a, WorkloadTraceRef("NW", 1.0));
  EXPECT_NE(a, WorkloadTraceRef("BFS", 0.5));
  EXPECT_EQ(a, WorkloadTraceRef("BFS", 1.0));
}

TEST(Fnv1a64Test, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// CanonicalText must react to edits in every layer of SimConfig --
// otherwise two genuinely different configurations could share a cache
// entry. One representative field per sub-struct.
TEST(CanonicalTextTest, CoversEveryConfigLayer) {
  const SimConfig base;
  const std::string t0 = CanonicalText(base);
  EXPECT_EQ(t0.rfind("config_format v1\n", 0), 0u);
  EXPECT_EQ(t0, CanonicalText(base));  // pure function

  auto differs = [&](auto mutate, const char* what) {
    SimConfig c;
    mutate(c);
    EXPECT_NE(CanonicalText(c), t0) << "CanonicalText blind to " << what;
  };
  differs([](SimConfig& c) { c.num_cores += 1; }, "num_cores");
  differs([](SimConfig& c) { c.core.max_warps += 1; }, "core.*");
  differs([](SimConfig& c) { c.l1d.geom.ways *= 2; }, "l1d.geom.*");
  differs([](SimConfig& c) { c.l1d.mshr_entries += 1; }, "l1d mshr");
  differs([](SimConfig& c) { c.l1d.prot.pdpt_entries += 1; }, "l1d.prot.*");
  differs([](SimConfig& c) { c.l2.latency += 1; }, "l2.*");
  differs([](SimConfig& c) { c.dram.banks *= 2; }, "dram.*");
  differs([](SimConfig& c) { c.icnt.latency += 1; }, "icnt.*");
  differs([](SimConfig& c) { c.mem_mhz += 1; }, "clocks");
  differs([](SimConfig& c) { c.max_core_cycles += 1; }, "max_core_cycles");
}

}  // namespace
}  // namespace dlpsim::serve
