// Acceptance stress for the serving PR: >= 1000 requests over >= 8
// concurrent clients with 5% fault injection; every request ends served
// or typed-failed, and the deterministic serve-metrics dump is
// byte-identical across two identical replays at a fixed seed.
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace dlpsim::serve {
namespace {

namespace fs = std::filesystem;

struct ReplayResult {
  LoadGenStats stats;
  std::string deterministic_dump;
  bool ok = false;
  std::string err;
};

/// Boots a fresh server (own registry, fresh cache dir), replays the
/// deterministic load against it, drains, and captures the
/// deterministic metrics dump. Everything about the run is a pure
/// function of (load, workers) -- that is the property under test.
ReplayResult Replay(const LoadGenOptions& load_in, std::size_t workers,
                    const std::string& stem) {
  ReplayResult out;
  const std::string cache_dir = stem + ".cache";
  fs::create_directories(cache_dir);

  obs::Registry registry;
  ServeMetrics metrics(registry);
  ServerOptions opts;
  opts.socket_path = stem + ".sock";
  opts.worker.argv = {DLPSIM_STUB_WORKER};
  opts.workers = workers;
  // Queue >= total concurrency: backpressure stays deterministic (zero
  // rejections), as the metrics contract requires.
  opts.queue_capacity = 256;
  opts.budget.max_attempts = 3;
  opts.budget.backoff_ms = 1;
  opts.budget.deadline_ms = 30000;
  opts.cache_dir = cache_dir;
  opts.metrics = &metrics;
  opts.registry = &registry;
  Server server(std::move(opts));
  if (!server.Start(&out.err)) return out;

  LoadGenOptions load = load_in;
  load.socket_path = stem + ".sock";
  if (!RunLoadGen(load, &out.stats, &out.err)) {
    server.Stop();
    return out;
  }
  server.Stop();  // graceful drain; gauges must be back to zero

  std::ostringstream dump;
  WriteDeterministicText(dump, registry);
  out.deterministic_dump = dump.str();
  out.ok = true;

  std::error_code ec;
  fs::remove_all(cache_dir, ec);
  fs::remove(stem + ".sock", ec);
  return out;
}

TEST(ServeStress, TwoIdenticalReplaysProduceByteIdenticalMetrics) {
  LoadGenOptions load;
  load.requests = 1000;
  load.concurrency = 8;
  load.seed = 42;
  load.chaos_pct = 5;

  const std::string pid = std::to_string(::getpid());
  const ReplayResult a = Replay(load, 8, "stress_a_" + pid);
  ASSERT_TRUE(a.ok) << a.err;
  const ReplayResult b = Replay(load, 8, "stress_b_" + pid);
  ASSERT_TRUE(b.ok) << b.err;

  // Acceptance: every request served or typed-failed -- nothing lost.
  for (const ReplayResult* r : {&a, &b}) {
    EXPECT_EQ(r->stats.sent, load.requests);
    EXPECT_TRUE(r->stats.accounted());
    EXPECT_EQ(r->stats.transport_errors, 0u);
    EXPECT_EQ(r->stats.ok, load.requests);  // crash:1 faults retry to ok
  }

  // Acceptance: the serve metrics dump is byte-identical across the two
  // replays, despite 8-way concurrency and ~50 injected worker crashes
  // whose timing differs between runs.
  ASSERT_FALSE(a.deterministic_dump.empty());
  EXPECT_EQ(a.deterministic_dump, b.deterministic_dump);

  // Spot-check the dump is the real thing, not an empty header.
  EXPECT_NE(a.deterministic_dump.find("requests_total 1000"),
            std::string::npos)
      << a.deterministic_dump;
  EXPECT_NE(a.deterministic_dump.find("worker_crashes"), std::string::npos);
  // The wall-clock scope must NOT leak into the deterministic dump.
  EXPECT_EQ(a.deterministic_dump.find("latency_us"), std::string::npos);
  EXPECT_EQ(a.deterministic_dump.find("queue_wait_us"), std::string::npos);
}

// Scheduling independence: the same replay at 2 vs 8 workers yields the
// same deterministic dump (worker count only changes wall-clock, never
// the serve-scope counters).
TEST(ServeStress, WorkerCountDoesNotChangeDeterministicMetrics) {
  LoadGenOptions load;
  load.requests = 400;
  load.concurrency = 8;
  load.seed = 7;
  load.chaos_pct = 5;

  const std::string pid = std::to_string(::getpid());
  const ReplayResult w2 = Replay(load, 2, "stress_w2_" + pid);
  ASSERT_TRUE(w2.ok) << w2.err;
  const ReplayResult w8 = Replay(load, 8, "stress_w8_" + pid);
  ASSERT_TRUE(w8.ok) << w8.err;

  EXPECT_EQ(w2.stats.ok, load.requests);
  EXPECT_EQ(w8.stats.ok, load.requests);
  EXPECT_EQ(w2.deterministic_dump, w8.deterministic_dump);
}

// Different seeds genuinely change the stream (guards against a dump
// that is byte-identical because it is insensitive to the workload).
TEST(ServeStress, DifferentSeedsProduceDifferentDumps) {
  LoadGenOptions load;
  load.requests = 200;
  load.concurrency = 4;
  load.chaos_pct = 10;

  const std::string pid = std::to_string(::getpid());
  load.seed = 1;
  const ReplayResult s1 = Replay(load, 4, "stress_s1_" + pid);
  ASSERT_TRUE(s1.ok) << s1.err;
  load.seed = 2;
  const ReplayResult s2 = Replay(load, 4, "stress_s2_" + pid);
  ASSERT_TRUE(s2.ok) << s2.err;

  EXPECT_NE(s1.deterministic_dump, s2.deterministic_dump);
}

}  // namespace
}  // namespace dlpsim::serve
