// Fault-injection tests: deterministic plans, spec parsing, and graceful
// degradation of whole-GPU runs under corrupted DLP state.
#include "robust/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim::robust {
namespace {

SimConfig TinyGpu(PolicyKind policy = PolicyKind::kDlp) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  cfg.max_core_cycles = 1000000;
  return cfg;
}

std::unique_ptr<Program> SmallKernel() {
  ProgramBuilder b(8);
  b.Alu(10).LoadStream().Alu(5).LoadPrivate(2).StoreStream().Alu(5);
  return b.Build();
}

TEST(FaultPlan, RandomIsDeterministic) {
  const FaultPlan a = FaultPlan::Random(7, 24, 100000, 500);
  const FaultPlan b = FaultPlan::Random(7, 24, 100000, 500);
  ASSERT_EQ(a.events.size(), 24u);
  ASSERT_EQ(b.events.size(), 24u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].a, b.events[i].a);
    EXPECT_EQ(a.events[i].b, b.events[i].b);
  }
  // A different seed must produce a different schedule.
  const FaultPlan c = FaultPlan::Random(8, 24, 100000, 500);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].cycle != c.events[i].cycle ||
        a.events[i].a != c.events[i].a) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, RandomSpreadsEventsInsideHorizon) {
  const FaultPlan plan = FaultPlan::Random(1, 32, 160000, 100);
  Cycle prev = 0;
  bool seen[kNumFaultKinds] = {};
  for (const FaultEvent& ev : plan.events) {
    EXPECT_GE(ev.cycle, 160000u / 16);
    EXPECT_LT(ev.cycle, 160000u);
    EXPECT_GE(ev.cycle, prev);  // sorted
    prev = ev.cycle;
    seen[static_cast<std::size_t>(ev.kind)] = true;
  }
  // Round-robin kind assignment covers every kind in a 32-event plan.
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    EXPECT_TRUE(seen[k]) << "kind " << k << " never scheduled";
  }
}

TEST(FaultPlan, RandomHonoursKindMask) {
  const FaultPlan plan =
      FaultPlan::Random(3, 16, 100000, 100,
                        MaskOf(FaultKind::kPdptPd) | MaskOf(FaultKind::kVtaClear));
  for (const FaultEvent& ev : plan.events) {
    EXPECT_TRUE(ev.kind == FaultKind::kPdptPd ||
                ev.kind == FaultKind::kVtaClear);
  }
}

TEST(FaultPlan, ParseDefaultsAndFullSpec) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse("1", &plan, &err)) << err;
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_FALSE(plan.empty());

  ASSERT_TRUE(FaultPlan::Parse(
      "seed=9,count=5,horizon=50000,stall=123,kinds=pdpt+mem", &plan, &err))
      << err;
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_EQ(plan.stall_cycles, 123u);
  EXPECT_EQ(plan.events.size(), 5u);
  for (const FaultEvent& ev : plan.events) {
    EXPECT_TRUE(ev.kind == FaultKind::kPdptPd ||
                ev.kind == FaultKind::kMemStall);
  }
}

TEST(FaultPlan, ParseRejectsGarbage) {
  FaultPlan plan;
  std::string err;
  EXPECT_FALSE(FaultPlan::Parse("bogus=1", &plan, &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(FaultPlan::Parse("kinds=warp", &plan, &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(FaultPlan::Parse("seed=xyz", &plan, &err));
  EXPECT_FALSE(err.empty());
}

TEST(FaultInjector, GpuDegradesGracefullyUnderAllFaultKinds) {
  auto prog = SmallKernel();

  // Clean reference run.
  GpuSimulator clean(TinyGpu(), prog.get(), 4);
  const Metrics ref = clean.Run();
  ASSERT_EQ(ref.completed, 1u);
  ASSERT_GT(ref.core_cycles, 0u);

  // Faulty run: every kind, scheduled across the clean run's span.
  const FaultPlan plan =
      FaultPlan::Random(42, 12, ref.core_cycles, /*stall_cycles=*/500);
  FaultInjector injector(plan);
  GpuSimulator gpu(TinyGpu(), prog.get(), 4);
  gpu.SetFaultInjector(&injector);
  const Metrics m = gpu.Run();

  // Graceful degradation: the run still completes (no deadlock), all
  // metrics are finite, and IPC stays within a bounded factor of clean.
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(gpu.run_error(), RunError::kNone);
  EXPECT_GT(injector.applied_total(), 0u);
  EXPECT_TRUE(std::isfinite(m.ipc()));
  EXPECT_GT(m.ipc(), 0.0);
  EXPECT_GE(m.ipc(), 0.25 * ref.ipc());
  EXPECT_LE(m.ipc(), 2.0 * ref.ipc());
  // Work conservation survives corruption: same committed instructions.
  EXPECT_EQ(m.committed_thread_insns, ref.committed_thread_insns);
}

TEST(FaultInjector, SamePlanSameResults) {
  auto prog = SmallKernel();
  const FaultPlan plan = FaultPlan::Random(11, 8, 100000, 300);

  Metrics runs[2];
  for (int i = 0; i < 2; ++i) {
    FaultInjector injector(plan);
    GpuSimulator gpu(TinyGpu(), prog.get(), 4);
    gpu.SetFaultInjector(&injector);
    runs[i] = gpu.Run();
  }
  EXPECT_EQ(runs[0].ToText(), runs[1].ToText());
}

TEST(FaultInjector, WriteJsonReportsAppliedCounts) {
  auto prog = SmallKernel();
  FaultInjector injector(FaultPlan::Random(5, 6, 80000, 200));
  GpuSimulator gpu(TinyGpu(), prog.get(), 4);
  gpu.SetFaultInjector(&injector);
  gpu.Run();

  std::ostringstream os;
  injector.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"seed\""), std::string::npos);
  EXPECT_NE(json.find("\"applied\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}

}  // namespace
}  // namespace dlpsim::robust
