// Invariant-checker tests: every check passes on a healthy cache, catches
// a planted corruption, and never changes simulation results.
#include "robust/invariants.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/l1d_cache.h"
#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim::robust {
namespace {

L1DConfig SmallConfig(PolicyKind kind = PolicyKind::kDlp) {
  L1DConfig cfg;
  cfg.geom.sets = 4;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.mshr_max_merged = 2;
  cfg.miss_queue_entries = 4;
  cfg.policy = kind;
  return cfg;
}

/// Fills a handful of lines so every structure has occupied state.
void WarmUp(L1DCache& cache) {
  std::vector<MshrToken> woken;
  MshrToken token = 1;
  for (Addr addr = 0; addr < 8 * 128; addr += 128) {
    const Pc pc = static_cast<Pc>(addr / 128);
    cache.Access(MemAccess{addr, AccessType::kLoad, pc, token++}, 0);
    while (cache.HasOutgoing()) {
      const L1DOutgoing out = cache.PopOutgoing();
      if (out.write) continue;
      woken.clear();
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }
}

TEST(Invariants, HealthyCachePassesEveryCheck) {
  for (PolicyKind kind :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    L1DCache cache(SmallConfig(kind));
    WarmUp(cache);
    SCOPED_TRACE(ToString(kind));
    EXPECT_EQ(CheckL1D(cache), "");
  }
}

TEST(Invariants, CatchesPlFieldOverflow) {
  L1DCache cache(SmallConfig());
  WarmUp(cache);
  // Plant a PL value that cannot fit the 4-bit hardware field.
  cache.mutable_tda().At(0, 0).protected_life = 99;
  EXPECT_NE(CheckPlClamp(cache), "");
  EXPECT_NE(CheckL1D(cache), "");
}

TEST(Invariants, CatchesPlCounterDrift) {
  L1DCache cache(SmallConfig());
  WarmUp(cache);
  // In-range PL change without the matching PlCounters::Move: the
  // incremental histogram no longer matches a brute-force walk.
  CacheLine& line = cache.mutable_tda().At(1, 0);
  ASSERT_TRUE(IsOccupied(line.state));
  line.protected_life = (line.protected_life + 1) & 15u;
  EXPECT_NE(CheckPlCounters(cache), "");
}

TEST(Invariants, CatchesReservedLineWithoutMshr) {
  L1DCache cache(SmallConfig());
  WarmUp(cache);
  CacheLine& line = cache.mutable_tda().At(2, 0);
  ASSERT_TRUE(IsFilled(line.state));
  line.state = LineState::kReserved;  // no MSHR entry backs this
  EXPECT_NE(CheckMshrConsistency(cache), "");
}

TEST(Invariants, CatchesDuplicateLruStamps) {
  L1DCache cache(SmallConfig());
  WarmUp(cache);
  CacheLine& a = cache.mutable_tda().At(3, 0);
  CacheLine& b = cache.mutable_tda().At(3, 1);
  ASSERT_TRUE(IsOccupied(a.state));
  ASSERT_TRUE(IsOccupied(b.state));
  b.last_use = a.last_use;  // LRU can no longer order the set
  EXPECT_NE(CheckLruValidity(cache), "");
}

TEST(Invariants, CheckerThrowsStructuredErrorOnCorruptedGpu) {
  SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  ProgramBuilder b(4);
  b.Alu(4).LoadPrivate(2);
  auto prog = b.Build();
  GpuSimulator gpu(cfg, prog.get(), 2);

  // Run a few steps so lines exist, then corrupt one core's L1D.
  for (int i = 0; i < 20000 && !gpu.Done(); ++i) gpu.Step();
  L1DCache& l1d = gpu.cores()[1].l1d();
  bool planted = false;
  for (std::uint32_t set = 0; set < l1d.config().geom.sets && !planted;
       ++set) {
    for (std::uint32_t way = 0; way < l1d.config().geom.ways; ++way) {
      CacheLine& line = l1d.mutable_tda().At(set, way);
      if (IsOccupied(line.state)) {
        line.protected_life = 99;
        planted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(planted) << "no occupied line to corrupt";

  InvariantChecker checker(/*check_interval=*/1, /*throw_on_violation=*/true);
  try {
    checker.CheckAll(gpu, gpu.core_cycles());
    FAIL() << "corruption not detected";
  } catch (const InvariantError& e) {
    EXPECT_EQ(e.sm(), 1u);
    EXPECT_EQ(e.check(), "pl_clamp");
    EXPECT_NE(std::string(e.what()).find("sm1"), std::string::npos);
  }
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_FALSE(checker.last_violation().empty());
}

TEST(Invariants, NonThrowingCheckerRecordsViolations) {
  L1DCache cache(SmallConfig());
  WarmUp(cache);
  cache.mutable_tda().At(0, 0).protected_life = 42;

  // Free-function layer only (no GpuSimulator needed): the violation
  // description names the failing check.
  const std::string v = CheckL1D(cache);
  EXPECT_NE(v.find("pl_clamp"), std::string::npos);
}

TEST(Invariants, CheckedRunMatchesUncheckedByteForByte) {
  SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  ProgramBuilder b(8);
  b.Alu(8).LoadStream().LoadPrivate(2).StoreStream();
  auto prog = b.Build();

  GpuSimulator plain(cfg, prog.get(), 4);
  const Metrics ref = plain.Run();

  InvariantChecker checker(/*check_interval=*/512,
                           /*throw_on_violation=*/true);
  GpuSimulator checked(cfg, prog.get(), 4);
  checked.SetInvariantChecker(&checker);
  const Metrics m = checked.Run();

  EXPECT_GT(checker.checks_run(), 0u);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(m.ToText(), ref.ToText());
}

TEST(Invariants, EnvKnobControlsChecker) {
  // DLPSIM_CHECK=1 enables, =0 disables, regardless of the build default.
  ASSERT_EQ(::setenv("DLPSIM_CHECK", "1", 1), 0);
  EXPECT_TRUE(ChecksEnabledByEnv());
  EXPECT_NE(MakeCheckerFromEnv(), nullptr);
  ASSERT_EQ(::setenv("DLPSIM_CHECK", "0", 1), 0);
  EXPECT_FALSE(ChecksEnabledByEnv());
  EXPECT_EQ(MakeCheckerFromEnv(), nullptr);
  ::unsetenv("DLPSIM_CHECK");
}

}  // namespace
}  // namespace dlpsim::robust
