// Watchdog tests: a hand-crafted livelock must become a structured
// diagnostic + typed error instead of silently burning the cycle budget.
#include "robust/watchdog.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/simulator.h"
#include "robust/fault.h"
#include "workloads/registry.h"

namespace dlpsim::robust {
namespace {

SimConfig TinyGpu(PolicyKind policy = PolicyKind::kBaseline) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  cfg.max_core_cycles = 1000000;
  return cfg;
}

std::unique_ptr<Program> SmallKernel() {
  ProgramBuilder b(8);
  b.Alu(10).LoadStream().Alu(5).LoadPrivate(2).StoreStream().Alu(5);
  return b.Build();
}

TEST(Watchdog, ObserveTripsOnceAfterStallWindow) {
  Watchdog wd(WatchdogConfig{/*check_interval=*/100, /*stall_cycles=*/1000});
  // Progressing signatures never trip.
  EXPECT_FALSE(wd.Observe(1, 100));
  EXPECT_FALSE(wd.Observe(2, 200));
  // Signature freezes at cycle 200; the window must elapse first.
  EXPECT_FALSE(wd.Observe(2, 300));
  EXPECT_FALSE(wd.Observe(2, 1100));
  // 1201 - 200 > 1000: trip, exactly once.
  EXPECT_TRUE(wd.Observe(2, 1300));
  EXPECT_TRUE(wd.tripped());
  EXPECT_FALSE(wd.Observe(2, 1400));
  EXPECT_EQ(wd.last_progress_cycle(), 200u);
}

TEST(Watchdog, HandCraftedLivelockProducesTypedErrorAndDiagnostic) {
  // Livelock: freeze the crossbar "forever" mid-run. Every warp ends up
  // waiting on memory that can never arrive; without the watchdog this
  // burns the full 1M-cycle budget.
  auto prog = SmallKernel();
  FaultPlan plan;
  plan.stall_cycles = 1u << 30;  // effectively frozen forever
  plan.events.push_back(
      FaultEvent{/*cycle=*/2000, FaultKind::kIcntStall, 0, 0, 0});
  FaultInjector injector(plan);

  Watchdog wd(WatchdogConfig{/*check_interval=*/512, /*stall_cycles=*/20000});
  GpuSimulator gpu(TinyGpu(), prog.get(), 4);
  gpu.SetFaultInjector(&injector);
  gpu.SetWatchdog(&wd);
  const Metrics m = gpu.Run();

  // Typed error, well before the hard cycle budget.
  EXPECT_EQ(gpu.run_error(), RunError::kWatchdogStall);
  EXPECT_TRUE(wd.tripped());
  EXPECT_EQ(m.completed, 0u);
  EXPECT_LT(m.core_cycles, 200000u);

  // The diagnostic names the stalled resource (the frozen interconnect)
  // and carries per-SM state.
  const StallDiagnostic& d = wd.diagnostic();
  EXPECT_EQ(d.StalledResource(), "interconnect");
  EXPECT_GT(d.icnt_in_flight, 0u);
  EXPECT_EQ(d.sms.size(), 2u);
  EXPECT_GT(d.total_wait_mem, 0u);
  EXPECT_GT(d.trip_cycle, d.last_progress_cycle);

  const std::string text = d.ToText();
  EXPECT_NE(text.find("interconnect"), std::string::npos);
  EXPECT_NE(text.find("watchdog"), std::string::npos);

  std::ostringstream os;
  d.WriteJson(os);
  EXPECT_NE(os.str().find("\"stalled_resource\""), std::string::npos);
}

TEST(Watchdog, CycleBudgetIsTypedError) {
  SimConfig cfg = TinyGpu();
  cfg.max_core_cycles = 500;
  ProgramBuilder b(1000000);  // cannot finish in 500 cycles
  b.Alu(100).LoadStream();
  auto prog = b.Build();
  GpuSimulator gpu(cfg, prog.get(), 4);
  const Metrics m = gpu.Run();
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(gpu.run_error(), RunError::kCycleBudget);
}

TEST(Watchdog, CleanRunNeverTripsAndResultsAreByteIdentical) {
  auto prog = SmallKernel();

  GpuSimulator plain(TinyGpu(), prog.get(), 4);
  const Metrics ref = plain.Run();
  ASSERT_EQ(ref.completed, 1u);

  Watchdog wd(WatchdogConfig{/*check_interval=*/256, /*stall_cycles=*/50000});
  GpuSimulator watched(TinyGpu(), prog.get(), 4);
  watched.SetWatchdog(&wd);
  const Metrics m = watched.Run();

  EXPECT_FALSE(wd.tripped());
  EXPECT_EQ(watched.run_error(), RunError::kNone);
  EXPECT_EQ(m.ToText(), ref.ToText());
}

TEST(Watchdog, RunErrorToStringIsStable) {
  EXPECT_STREQ(ToString(RunError::kNone), "none");
  EXPECT_STREQ(ToString(RunError::kWatchdogStall), "watchdog_stall");
  EXPECT_STREQ(ToString(RunError::kCycleBudget), "cycle_budget");
}

}  // namespace
}  // namespace dlpsim::robust
