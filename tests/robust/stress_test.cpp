// Randomized robustness stress: seeded random configurations and
// workloads, every policy, run under the invariant checker and a
// watchdog. Nothing may trip, throw, or fail to terminate.
#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "robust/invariants.h"
#include "robust/watchdog.h"
#include "sim/rng.h"
#include "workloads/registry.h"

namespace dlpsim::robust {
namespace {

/// A valid-but-randomized small machine drawn from `rng`. Stays inside
/// SimConfig::Validate() bounds on purpose: the point is that any legal
/// configuration holds the invariants, not that illegal ones are caught
/// (config_test covers those).
SimConfig RandomConfig(Rng& rng, PolicyKind policy) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 1 + static_cast<std::uint32_t>(rng.Below(3));       // 1-3
  cfg.num_partitions = 1 + static_cast<std::uint32_t>(rng.Below(3));  // 1-3
  cfg.l1d.geom.sets = 8u << rng.Below(3);   // 8/16/32
  cfg.l1d.geom.ways = 2u << rng.Below(2);   // 2/4
  cfg.l1d.mshr_entries = 4u << rng.Below(3);  // 4/8/16
  cfg.l1d.mshr_max_merged = 2 + static_cast<std::uint32_t>(rng.Below(6));
  cfg.l1d.miss_queue_entries = 2 + static_cast<std::uint32_t>(rng.Below(6));
  cfg.l1d.prot.sample_accesses = 100 + static_cast<std::uint32_t>(rng.Below(400));
  cfg.l1d.prot.sample_max_cycles = 2000 + static_cast<std::uint32_t>(rng.Below(8000));
  cfg.max_core_cycles = 2000000;
  cfg.ValidateOrThrow();  // sanity: the generator itself must stay legal
  return cfg;
}

std::unique_ptr<Program> RandomKernel(Rng& rng) {
  ProgramBuilder b(4 + static_cast<std::uint32_t>(rng.Below(6)));
  const int ops = 3 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < ops; ++i) {
    switch (rng.Below(5)) {
      case 0:
        b.Alu(1 + static_cast<std::uint32_t>(rng.Below(20)));
        break;
      case 1:
        b.LoadStream();
        break;
      case 2:
        b.LoadPrivate(1 + rng.Below(8));
        break;
      case 3:
        b.LoadShared(4 + rng.Below(16), 2);
        break;
      default:
        b.StoreStream();
        break;
    }
  }
  b.Alu(2);  // never end on a memory op with zero trailing compute
  return b.Build();
}

TEST(RobustStress, RandomConfigsHoldInvariantsUnderEveryPolicy) {
  Rng rng(20260807);
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    for (PolicyKind policy :
         {PolicyKind::kBaseline, PolicyKind::kStallBypass,
          PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
      const SimConfig cfg = RandomConfig(rng, policy);
      auto prog = RandomKernel(rng);
      const std::uint32_t warps = 2 + static_cast<std::uint32_t>(rng.Below(7));
      SCOPED_TRACE(std::string(ToString(policy)) + " round " +
                   std::to_string(round) + " warps " + std::to_string(warps));

      InvariantChecker checker(/*check_interval=*/1024,
                               /*throw_on_violation=*/true);
      Watchdog wd(
          WatchdogConfig{/*check_interval=*/1024, /*stall_cycles=*/200000});
      GpuSimulator gpu(cfg, prog.get(), warps);
      gpu.SetInvariantChecker(&checker);
      gpu.SetWatchdog(&wd);

      Metrics m;
      ASSERT_NO_THROW(m = gpu.Run());
      EXPECT_FALSE(wd.tripped());
      EXPECT_EQ(gpu.run_error(), RunError::kNone);
      EXPECT_EQ(m.completed, 1u);
      EXPECT_GT(checker.checks_run(), 0u);
      EXPECT_EQ(checker.violations(), 0u);
    }
  }
}

}  // namespace
}  // namespace dlpsim::robust
