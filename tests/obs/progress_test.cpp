// Unit tests for the DLPSIM_PROGRESS heartbeat (obs/progress.h) and its
// integration with the watchdog's StallDiagnostic: a simulator that
// stalls must quote its last heartbeat line in the stall report.
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.h"
#include "robust/watchdog.h"

namespace dlpsim::obs {
namespace {

TEST(ProgressMeter, DueFollowsIntervalGrid) {
  std::ostringstream os;
  ProgressMeter meter(1000, "BFS/dlp", &os);
  EXPECT_FALSE(meter.Due(0));
  EXPECT_FALSE(meter.Due(999));
  EXPECT_TRUE(meter.Due(1000));

  ProgressSample s;
  s.cycle = 1000;
  meter.Emit(s);
  EXPECT_FALSE(meter.Due(1500));
  EXPECT_TRUE(meter.Due(2000));

  // A sample far past several due points advances past all of them.
  s.cycle = 5300;
  meter.Emit(s);
  EXPECT_FALSE(meter.Due(5999));
  EXPECT_TRUE(meter.Due(6000));
}

TEST(ProgressMeter, EmitFormatsLabelCycleAndWarps) {
  std::ostringstream os;
  ProgressMeter meter(100, "HS/base", &os);
  ProgressSample s;
  s.cycle = 200;
  s.accesses = 1234;
  s.warps_total = 512;
  s.warps_finished = 128;
  meter.Emit(s);

  const std::string line = meter.last_line();
  EXPECT_EQ(os.str(), line + "\n");
  EXPECT_NE(line.find("[progress] HS/base cycle=200"), std::string::npos);
  EXPECT_NE(line.find("warps=128/512"), std::string::npos);
  EXPECT_NE(line.find("acc/s="), std::string::npos);
  // 0 < finished < total => an ETA estimate is present.
  EXPECT_NE(line.find("eta="), std::string::npos);
}

TEST(ProgressMeter, NoEtaBeforeFirstFinishedWarp) {
  std::ostringstream os;
  ProgressMeter meter(100, "", &os);
  ProgressSample s;
  s.cycle = 100;
  s.warps_total = 64;
  s.warps_finished = 0;
  meter.Emit(s);
  EXPECT_EQ(meter.last_line().find("eta="), std::string::npos);
}

TEST(ProgressMeter, LastLineEmptyBeforeFirstEmit) {
  std::ostringstream os;
  ProgressMeter meter(100, "x", &os);
  EXPECT_TRUE(meter.last_line().empty());
}

TEST(ProgressMeter, ZeroIntervalClampsToOne) {
  std::ostringstream os;
  ProgressMeter meter(0, "", &os);
  EXPECT_EQ(meter.interval(), 1u);
  EXPECT_TRUE(meter.Due(1));
}

TEST(StallDiagnostic, CarriesLastHeartbeatInTextAndJson) {
  robust::StallDiagnostic d;
  d.trip_cycle = 500000;
  d.last_progress_cycle = 400000;
  d.last_heartbeat = "[progress] BFS/dlp cycle=400000 acc/s=12 warps=1/512";

  const std::string text = d.ToText();
  EXPECT_NE(text.find("last heartbeat: [progress] BFS/dlp cycle=400000"),
            std::string::npos);

  std::ostringstream os;
  d.WriteJson(os);
  bool ok = false;
  const dlpsim::JsonValue doc = dlpsim::ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  ASSERT_NE(doc.Find("last_heartbeat"), nullptr);
  EXPECT_EQ(doc.Find("last_heartbeat")->string, d.last_heartbeat);
}

TEST(StallDiagnostic, OmitsHeartbeatLineWhenNeverEmitted) {
  robust::StallDiagnostic d;
  EXPECT_EQ(d.ToText().find("last heartbeat"), std::string::npos);
}

}  // namespace
}  // namespace dlpsim::obs
