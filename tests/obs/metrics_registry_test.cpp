// Unit tests for the typed metrics registry (obs/metrics.h): instrument
// semantics (counter/gauge/histogram), get-or-create identity, kind and
// bounds mismatch detection, shard-merge correctness under threads, and
// hostile-name escaping in every export format.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace dlpsim::obs {
namespace {

TEST(Counter, AddAndMerge) {
  Registry reg;
  Counter* c = reg.GetCounter("test", "adds");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(Counter, ThreadedAddsMergeExactly) {
  Registry reg;
  Counter* c = reg.GetCounter("test", "threaded");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Gauge, NetSumAndQuiescentZero) {
  Registry reg;
  Gauge* g = reg.GetGauge("test", "depth");
  g->Add(5);
  g->Sub(2);
  EXPECT_EQ(g->Value(), 3);
  // Matched Add/Sub pairs from different threads net to zero (the
  // quiescent-dump property DLPSIM_METRICS relies on).
  std::thread other([g] { g->Sub(3); });
  other.join();
  EXPECT_EQ(g->Value(), 0);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  Registry reg;
  const std::uint64_t bounds[] = {0, 1, 4};
  Histogram* h = reg.GetHistogram("test", "occ", bounds);

  h->Observe(0);  // le=0 bucket: v <= 0
  h->Observe(1);  // le=1 bucket: exact bound lands inside it
  h->Observe(2);  // le=4 bucket
  h->Observe(4);  // le=4 bucket: exact bound again
  h->Observe(5);  // overflow (+Inf)
  h->Observe(1u << 30);

  const std::vector<std::uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_EQ(h->Sum(), 0u + 1 + 2 + 4 + 5 + (1u << 30));
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  Registry reg;
  const std::uint64_t bad[] = {1, 1};
  EXPECT_THROW(reg.GetHistogram("test", "bad", bad), std::logic_error);
  const std::uint64_t decreasing[] = {4, 2};
  EXPECT_THROW(reg.GetHistogram("test", "bad2", decreasing),
               std::logic_error);
}

TEST(Registry, GetOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.GetCounter("cache", "hits", "help text");
  Counter* b = reg.GetCounter("cache", "hits");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);

  const std::uint64_t bounds[] = {1, 2};
  Histogram* h1 = reg.GetHistogram("cache", "occ", bounds);
  Histogram* h2 = reg.GetHistogram("cache", "occ", bounds);
  EXPECT_EQ(h1, h2);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.GetCounter("s", "n");
  EXPECT_THROW(reg.GetGauge("s", "n"), std::logic_error);
  const std::uint64_t bounds[] = {1};
  EXPECT_THROW(reg.GetHistogram("s", "n", bounds), std::logic_error);
}

TEST(Registry, HistogramBoundsMismatchThrows) {
  Registry reg;
  const std::uint64_t bounds[] = {1, 2, 3};
  reg.GetHistogram("s", "h", bounds);
  const std::uint64_t other[] = {1, 2};
  EXPECT_THROW(reg.GetHistogram("s", "h", other), std::logic_error);
}

TEST(Registry, ScopeNameKeyNeverCollides) {
  // ("a", "b_c") and ("a_b", "c") would collide under naive "a_b_c"
  // joining; the \x1f key separator keeps them distinct.
  Registry reg;
  Counter* x = reg.GetCounter("a", "b_c");
  Counter* y = reg.GetCounter("a_b", "c");
  EXPECT_NE(x, y);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, SnapshotSortedByScopeThenName) {
  Registry reg;
  reg.GetCounter("zeta", "a");
  reg.GetCounter("alpha", "b");
  reg.GetCounter("alpha", "a");
  const std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].info.scope, "alpha");
  EXPECT_EQ(snap[0].info.name, "a");
  EXPECT_EQ(snap[1].info.scope, "alpha");
  EXPECT_EQ(snap[1].info.name, "b");
  EXPECT_EQ(snap[2].info.scope, "zeta");
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter* c = reg.GetCounter("s", "c");
  Gauge* g = reg.GetGauge("s", "g");
  const std::uint64_t bounds[] = {1};
  Histogram* h = reg.GetHistogram("s", "h", bounds);
  c->Add(3);
  g->Add(4);
  h->Observe(2);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0u);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.GetCounter("s", "c"), c);  // pointer survives Reset
}

// --- exposition formats ---

TEST(Exposition, PrometheusNameSanitizes) {
  EXPECT_EQ(PrometheusName("cache", "pl_decrements"),
            "dlpsim_cache_pl_decrements");
  EXPECT_EQ(PrometheusName("we ird", "na-me!"), "dlpsim_we_ird_na_me_");
}

TEST(Exposition, PrometheusLabelEscapes) {
  EXPECT_EQ(PrometheusLabelEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Exposition, CsvFieldQuotesHostileValues) {
  EXPECT_EQ(CsvField("plain"), "plain");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
}

TEST(Exposition, WriteTextEmitsHelpTypeAndHistogramSeries) {
  Registry reg;
  Counter* c = reg.GetCounter("cache", "hits", "L1D load hits");
  c->Add(7);
  const std::uint64_t bounds[] = {1, 4};
  Histogram* h = reg.GetHistogram("cache", "occ", bounds);
  h->Observe(1);
  h->Observe(2);
  h->Observe(9);

  std::ostringstream os;
  reg.WriteText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP dlpsim_cache_hits L1D load hits"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dlpsim_cache_hits counter"), std::string::npos);
  EXPECT_NE(
      text.find("dlpsim_cache_hits{scope=\"cache\",name=\"hits\"} 7"),
      std::string::npos);
  // Cumulative bucket counts: le=1 -> 1, le=4 -> 2, +Inf -> 3.
  EXPECT_NE(text.find("le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("dlpsim_cache_occ_sum{scope=\"cache\",name=\"occ\"} 12"),
            std::string::npos);
  EXPECT_NE(
      text.find("dlpsim_cache_occ_count{scope=\"cache\",name=\"occ\"} 3"),
      std::string::npos);
}

TEST(Exposition, HostileNamesSurviveEveryFormat) {
  Registry reg;
  const std::string scope = "we\"ird\\scope";
  const std::string name = "name,with\n\"hostility\"";
  Counter* c = reg.GetCounter(scope, name, "help \"quoted\"\nline");
  c->Add(1);

  // Prometheus: label values escaped, metric name fully sanitized.
  std::ostringstream prom;
  reg.WriteText(prom);
  EXPECT_NE(prom.str().find("scope=\"we\\\"ird\\\\scope\""),
            std::string::npos);
  EXPECT_EQ(prom.str().find("name=\"name,with\n"), std::string::npos);

  // JSON: the document parses and round-trips the raw strings exactly.
  std::ostringstream json;
  reg.WriteJson(json);
  bool ok = false;
  const JsonValue doc = ParseJson(json.str(), &ok);
  ASSERT_TRUE(ok) << json.str();
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 1u);
  EXPECT_EQ(metrics->array[0].Find("scope")->string, scope);
  EXPECT_EQ(metrics->array[0].Find("name")->string, name);
  EXPECT_EQ(metrics->array[0].U64("value"), 1u);

  // CSV: hostile fields quoted, so the row still has exactly 5 columns
  // when parsed with an RFC-4180 reader (spot-check the quoting).
  std::ostringstream csv;
  reg.WriteCsv(csv);
  EXPECT_NE(csv.str().find("\"name,with\n\"\"hostility\"\"\""),
            std::string::npos);
}

TEST(Exposition, WriteJsonParsesAndCarriesHistograms) {
  Registry reg;
  const std::uint64_t bounds[] = {2, 8};
  Histogram* h = reg.GetHistogram("mem", "burst", bounds, "burst size");
  h->Observe(1);
  h->Observe(8);
  h->Observe(100);
  reg.GetGauge("exec", "depth")->Add(-2);

  std::ostringstream os;
  reg.WriteJson(os);
  bool ok = false;
  const JsonValue doc = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(doc.Find("schema")->string, "dlpsim-metrics-v1");
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 2u);
  // Sorted by scope: exec before mem.
  const JsonValue& gauge = metrics->array[0];
  EXPECT_EQ(gauge.Find("kind")->string, "gauge");
  EXPECT_EQ(gauge.Find("value")->number, -2.0);
  const JsonValue& hist = metrics->array[1];
  EXPECT_EQ(hist.Find("kind")->string, "histogram");
  ASSERT_EQ(hist.Find("buckets")->array.size(), 3u);
  EXPECT_EQ(hist.Find("buckets")->array[0].number_u64, 1u);
  EXPECT_EQ(hist.Find("buckets")->array[1].number_u64, 1u);
  EXPECT_EQ(hist.Find("buckets")->array[2].number_u64, 1u);
  EXPECT_EQ(hist.U64("count"), 3u);
  EXPECT_EQ(hist.U64("sum"), 109u);
}

TEST(Registry, GlobalIsSameInstance) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

}  // namespace
}  // namespace dlpsim::obs
