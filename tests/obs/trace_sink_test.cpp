// Ring-buffer semantics of the trace sink: ordering, wrap/overflow
// accounting, cycle stamping and kind filtering.
#include "obs/trace_sink.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TraceEvent Ev(TraceEventKind kind, std::uint64_t arg0 = 0) {
  TraceEvent e;
  e.kind = kind;
  e.arg0 = arg0;
  return e;
}

TEST(TraceSink, StoresEventsInOrderBelowCapacity) {
  TraceSink sink(8);
  EXPECT_TRUE(sink.empty());
  for (std::uint64_t i = 0; i < 5; ++i) {
    sink.SetNow(100 + i);
    sink.Emit(Ev(TraceEventKind::kAccess, i));
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.total_emitted(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);

  const auto events = sink.InOrder();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].arg0, i);
    EXPECT_EQ(events[i].cycle, 100 + i);  // stamped from SetNow
  }
}

TEST(TraceSink, WrapOverwritesOldestAndCountsDrops) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.SetNow(i);
    sink.Emit(Ev(TraceEventKind::kAccess, i));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.total_emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);

  // The four *youngest* events survive, oldest-first.
  const auto events = sink.InOrder();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, 6 + i);
    EXPECT_EQ(events[i].cycle, 6 + i);
  }
}

TEST(TraceSink, ExactlyFullDoesNotDrop) {
  TraceSink sink(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    sink.Emit(Ev(TraceEventKind::kFill, i));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.InOrder().front().arg0, 0u);
  EXPECT_EQ(sink.InOrder().back().arg0, 2u);
}

TEST(TraceSink, KindFilters) {
  TraceSink sink(16);
  sink.Emit(Ev(TraceEventKind::kAccess));
  sink.Emit(Ev(TraceEventKind::kBypass));
  sink.Emit(Ev(TraceEventKind::kAccess));
  sink.Emit(Ev(TraceEventKind::kEviction));
  EXPECT_EQ(sink.CountKind(TraceEventKind::kAccess), 2u);
  EXPECT_EQ(sink.CountKind(TraceEventKind::kBypass), 1u);
  EXPECT_EQ(sink.CountKind(TraceEventKind::kPdSample), 0u);
  EXPECT_EQ(sink.OfKind(TraceEventKind::kEviction).size(), 1u);
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink(2);
  sink.Emit(Ev(TraceEventKind::kAccess));
  sink.Emit(Ev(TraceEventKind::kAccess));
  sink.Emit(Ev(TraceEventKind::kAccess));
  sink.Clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.total_emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.InOrder().empty());
}

TEST(TraceSink, ZeroCapacityIsClampedToOne) {
  TraceSink sink(0);
  EXPECT_EQ(sink.capacity(), 1u);
  sink.Emit(Ev(TraceEventKind::kAccess, 1));
  sink.Emit(Ev(TraceEventKind::kAccess, 2));
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.InOrder()[0].arg0, 2u);
}

TEST(TraceSink, KindNames) {
  EXPECT_STREQ(ToString(TraceEventKind::kAccess), "access");
  EXPECT_STREQ(ToString(TraceEventKind::kBypass), "bypass");
  EXPECT_STREQ(ToString(TraceEventKind::kEviction), "eviction");
  EXPECT_STREQ(ToString(TraceEventKind::kFill), "fill");
  EXPECT_STREQ(ToString(TraceEventKind::kVtaHit), "vta_hit");
  EXPECT_STREQ(ToString(TraceEventKind::kPdSample), "pd_sample");
  EXPECT_STREQ(ToString(TraceEventKind::kPlSaturated), "pl_saturated");
}

}  // namespace
}  // namespace dlpsim
