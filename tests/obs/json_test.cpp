// JsonWriter / ParseJson unit tests plus the report round-trip: a
// WriteJsonReport document must parse back and reproduce every Metrics
// counter exactly.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/exporters.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "sim/config.h"

namespace dlpsim {
namespace {

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KV("name", "dlp");
  w.KV("count", std::uint64_t{42});
  w.KV("rate", 0.5);
  w.KV("on", true);
  w.Key("list").BeginArray().Value(std::uint64_t{1}).Value(std::uint64_t{2});
  w.EndArray();
  w.Key("inner").BeginObject().KV("x", std::int64_t{-3}).EndObject();
  w.EndObject();
  EXPECT_EQ(w.depth(), 0u);

  bool ok = false;
  const JsonValue v = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("name")->string, "dlp");
  EXPECT_EQ(v.U64("count"), 42u);
  EXPECT_DOUBLE_EQ(v.Find("rate")->number, 0.5);
  EXPECT_TRUE(v.Find("on")->boolean);
  ASSERT_TRUE(v.Find("list")->is_array());
  EXPECT_EQ(v.Find("list")->array.size(), 2u);
  EXPECT_EQ(v.Find("inner")->U64("x"), 0u);  // negative: no exact u64
  EXPECT_DOUBLE_EQ(v.Find("inner")->Find("x")->number, -3.0);
}

TEST(ParseJson, LargeCountersSurviveExactly) {
  bool ok = false;
  const JsonValue v = ParseJson(R"({"big": 18446744073709551615})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v.U64("big"), 18446744073709551615ull);
}

TEST(ParseJson, RejectsGarbage) {
  bool ok = true;
  ParseJson("{", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  ParseJson("{\"a\": 1} trailing", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  ParseJson("", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  ParseJson("[1, 2,]", &ok);
  EXPECT_FALSE(ok);
}

TEST(ParseJson, StringEscapes) {
  bool ok = false;
  const JsonValue v = ParseJson(R"({"s": "AB\n\t\"x\""})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v.Find("s")->string, "AB\n\t\"x\"");
}

Metrics SampleMetrics() {
  Metrics m;
  std::uint64_t seed = 7;
  // Give every reflected counter a distinct nonzero value.
  for (const MetricsField& f : MetricsFields()) {
    m.*(f.member) = seed;
    seed = seed * 31 + 11;
  }
  return m;
}

TEST(JsonReport, RoundTripsMetricsFields) {
  const Metrics m = SampleMetrics();
  const SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  const RunReportInfo info{.app = "BFS", .config = "dlp", .scale = 0.5};

  TraceSink sink(8);
  sink.SetNow(10);
  sink.Emit(TraceEvent{.kind = TraceEventKind::kAccess});

  TimelineSampler timeline(100);
  timeline.Record(100, m, PolicySnapshot{});

  std::ostringstream os;
  WriteJsonReport(os, info, cfg, m, &timeline, &sink);

  bool ok = false;
  const JsonValue v = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  ASSERT_TRUE(v.is_object());

  EXPECT_EQ(v.Find("schema")->string, "dlpsim-report-v1");
  EXPECT_EQ(v.Find("app")->string, "BFS");
  EXPECT_EQ(v.Find("config")->string, "dlp");
  EXPECT_DOUBLE_EQ(v.Find("scale")->number, 0.5);

  const JsonValue* metrics = v.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const MetricsField& f : MetricsFields()) {
    ASSERT_NE(metrics->Find(f.name), nullptr) << f.name;
    EXPECT_EQ(metrics->U64(f.name), m.*(f.member)) << f.name;
  }

  const JsonValue* sim = v.Find("sim_config");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->Find("policy")->string, ToString(cfg.l1d.policy));
  EXPECT_EQ(sim->U64("num_cores"), cfg.num_cores);
  EXPECT_EQ(sim->Find("l1d")->U64("sets"), cfg.l1d.geom.sets);

  const JsonValue* trace = v.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->U64("retained"), 1u);
  EXPECT_EQ(trace->U64("total_emitted"), 1u);
  EXPECT_EQ(trace->U64("dropped"), 0u);

  const JsonValue* tl = v.Find("timeline");
  ASSERT_NE(tl, nullptr);
  EXPECT_EQ(tl->U64("interval"), 100u);
  ASSERT_TRUE(tl->Find("samples")->is_array());
  ASSERT_EQ(tl->Find("samples")->array.size(), 1u);
  const JsonValue& sample = tl->Find("samples")->array[0];
  EXPECT_EQ(sample.U64("cycle"), 100u);
  // First sample: delta == cumulative == the metrics we recorded.
  for (const MetricsField& f : MetricsFields()) {
    EXPECT_EQ(sample.Find("delta")->U64(f.name), m.*(f.member)) << f.name;
    EXPECT_EQ(sample.Find("cumulative")->U64(f.name), m.*(f.member)) << f.name;
  }
}

TEST(ChromeTrace, IsParseableAndShapedRight) {
  TraceSink sink(16);
  sink.SetNow(5);
  sink.Emit(TraceEvent{.arg0 = 0, .kind = TraceEventKind::kAccess});
  sink.SetNow(6);
  sink.Emit(TraceEvent{.arg0 = 1, .sm = 1, .kind = TraceEventKind::kBypass});

  TimelineSampler timeline(50);
  timeline.Record(50, Metrics{}, PolicySnapshot{});

  std::ostringstream os;
  WriteChromeTrace(os, sink, &timeline, 2);

  bool ok = false;
  const JsonValue v = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t meta = 0, instant = 0, counters = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Find("ph")->string;
    if (ph == "M") ++meta;
    if (ph == "i") ++instant;
    if (ph == "C") ++counters;
  }
  EXPECT_EQ(meta, 3u);     // process_name + 2 thread_name records
  EXPECT_EQ(instant, 2u);  // one per trace record
  EXPECT_EQ(counters, 4u); // 4 counter tracks x 1 sample
}

}  // namespace
}  // namespace dlpsim
