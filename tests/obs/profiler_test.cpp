// Unit tests for the phase profiler (obs/profiler.h): span nesting and
// self/total attribution, collapsed-stack and Prometheus exports, the
// bounded event buffer, and the Chrome-trace exporter wiring.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/exporters.h"
#include "obs/json.h"

namespace dlpsim::obs {
namespace {

TEST(Profiler, NestedSpansSplitSelfFromTotal) {
  Profiler p;
  {
    ProfileSpan run(&p, Phase::kRun);
    {
      ProfileSpan core(&p, Phase::kCoreTick);
      ProfileSpan access(&p, Phase::kCacheAccess);
    }
    { ProfileSpan drain(&p, Phase::kDrainCheck); }
  }

  const auto stats = p.PhaseStats();
  ASSERT_EQ(stats.size(), 4u);
  // Enum order: run, core_tick, cache_access, drain_check.
  EXPECT_EQ(stats[0].first, Phase::kRun);
  EXPECT_EQ(stats[1].first, Phase::kCoreTick);
  EXPECT_EQ(stats[2].first, Phase::kCacheAccess);
  EXPECT_EQ(stats[3].first, Phase::kDrainCheck);
  for (const auto& [phase, stat] : stats) {
    EXPECT_EQ(stat.calls, 1u) << ToString(phase);
    EXPECT_GE(stat.total_seconds, 0.0);
    EXPECT_GE(stat.self_seconds, 0.0);
    // Self never exceeds total (total includes children).
    EXPECT_LE(stat.self_seconds, stat.total_seconds + 1e-12);
  }
  // The root span's total covers its children.
  EXPECT_GE(stats[0].second.total_seconds,
            stats[1].second.total_seconds + stats[3].second.total_seconds -
                1e-9);
}

TEST(Profiler, PathsFormCollapsedStacks) {
  Profiler p;
  {
    ProfileSpan run(&p, Phase::kRun);
    ProfileSpan core(&p, Phase::kCoreTick);
    ProfileSpan access(&p, Phase::kCacheAccess);
  }
  const auto& paths = p.PathSelfSeconds();
  EXPECT_EQ(paths.count("dlpsim;run"), 1u);
  EXPECT_EQ(paths.count("dlpsim;run;core_tick"), 1u);
  EXPECT_EQ(paths.count("dlpsim;run;core_tick;cache_access"), 1u);

  std::ostringstream os;
  p.WriteCollapsed(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("dlpsim;run;core_tick;cache_access "),
            std::string::npos);
}

TEST(Profiler, EventBufferIsBoundedAndCountsDrops) {
  Profiler p(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    ProfileSpan span(&p, Phase::kSnapshot);
  }
  EXPECT_EQ(p.events().size(), 2u);
  EXPECT_EQ(p.dropped_events(), 3u);
  // Aggregates keep counting past the buffer cap.
  const auto stats = p.PhaseStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.calls, 5u);
}

TEST(Profiler, NullProfilerSpansAreNoops) {
  ProfileSpan a(nullptr, Phase::kRun);
  ProfileSpan b(nullptr, Phase::kCoreTick);
  SUCCEED();
}

TEST(Profiler, WriteJsonParses) {
  Profiler p;
  {
    ProfileSpan run(&p, Phase::kRun);
    ProfileSpan mem(&p, Phase::kMemTick);
  }
  std::ostringstream os;
  p.WriteJson(os);
  bool ok = false;
  const JsonValue doc = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  EXPECT_EQ(doc.Find("schema")->string, "dlpsim-profile-v1");
  EXPECT_EQ(doc.U64("dropped_events"), 0u);
  const JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 2u);
  EXPECT_EQ(phases->array[0].Find("phase")->string, "run");
  EXPECT_EQ(phases->array[1].Find("phase")->string, "mem_tick");
  const JsonValue* paths = doc.Find("paths");
  ASSERT_NE(paths, nullptr);
  EXPECT_EQ(paths->array.size(), 2u);
}

TEST(Profiler, WriteTextEmitsPhaseCounters) {
  Profiler p;
  { ProfileSpan run(&p, Phase::kRun); }
  std::ostringstream os;
  p.WriteText(os);
  EXPECT_NE(os.str().find("dlpsim_profile_phase_calls{phase=\"run\"} 1"),
            std::string::npos);
}

TEST(Profiler, ChromeTraceExportParses) {
  Profiler p;
  {
    ProfileSpan run(&p, Phase::kRun);
    ProfileSpan core(&p, Phase::kCoreTick);
  }
  std::ostringstream os;
  WriteProfileChromeTrace(os, p, "BFS/dlp");
  bool ok = false;
  const JsonValue doc = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 process_name metadata + 2 complete spans.
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[0].Find("ph")->string, "M");
  // Spans complete child-first.
  EXPECT_EQ(events->array[1].Find("name")->string, "core_tick");
  EXPECT_EQ(events->array[1].Find("ph")->string, "X");
  EXPECT_EQ(events->array[1].U64("tid"), 1u);  // depth 1
  EXPECT_EQ(events->array[2].Find("name")->string, "run");
  EXPECT_EQ(events->array[2].U64("tid"), 0u);  // depth 0 (root)
}

}  // namespace
}  // namespace dlpsim::obs
