// TimelineSampler unit tests plus the observability integration
// contracts: timeline deltas sum exactly to the final Metrics, attaching
// a sink never perturbs simulation results, and traced DLP runs carry
// the expected event kinds.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "obs/trace_sink.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

Metrics WithLoads(std::uint64_t accesses, std::uint64_t hits) {
  Metrics m;
  m.l1d_accesses = accesses;
  m.l1d_loads = accesses;
  m.l1d_load_hits = hits;
  return m;
}

TEST(TimelineSampler, DeltasAgainstPreviousSample) {
  TimelineSampler sampler(100);
  EXPECT_FALSE(sampler.Due(99));
  EXPECT_TRUE(sampler.Due(100));

  sampler.Record(100, WithLoads(50, 10), PolicySnapshot{});
  sampler.Record(200, WithLoads(80, 25), PolicySnapshot{});

  ASSERT_EQ(sampler.samples().size(), 2u);
  const TimelineSample& a = sampler.samples()[0];
  const TimelineSample& b = sampler.samples()[1];
  EXPECT_EQ(a.cycle, 100u);
  EXPECT_EQ(a.delta.l1d_accesses, 50u);       // first delta = cumulative
  EXPECT_EQ(b.delta.l1d_accesses, 30u);
  EXPECT_EQ(b.delta.l1d_load_hits, 15u);
  EXPECT_EQ(b.cumulative.l1d_accesses, 80u);  // cumulative untouched
}

TEST(TimelineSampler, AdvancesOnFixedGrid) {
  TimelineSampler sampler(100);
  // The simulator checked in late (cycle 250): the next sample is still
  // due at the next grid point after now, not at now + interval.
  sampler.Record(250, WithLoads(1, 0), PolicySnapshot{});
  EXPECT_FALSE(sampler.Due(299));
  EXPECT_TRUE(sampler.Due(300));
}

TEST(TimelineSampler, ClearResets) {
  TimelineSampler sampler(10);
  sampler.Record(10, WithLoads(5, 5), PolicySnapshot{});
  sampler.Clear();
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_TRUE(sampler.Due(10));
  sampler.Record(10, WithLoads(7, 3), PolicySnapshot{});
  EXPECT_EQ(sampler.samples()[0].delta.l1d_accesses, 7u);  // last_ was reset
}

// --- integration against the real simulator ------------------------------

SimConfig TinyGpu(PolicyKind policy = PolicyKind::kBaseline) {
  SimConfig cfg = SimConfig::WithPolicy(policy);
  cfg.num_cores = 2;
  cfg.num_partitions = 2;
  cfg.max_core_cycles = 400000;
  return cfg;
}

std::unique_ptr<Program> SmallKernel() {
  ProgramBuilder b(8);
  b.Alu(10).LoadStream().Alu(5).LoadPrivate(2).StoreStream().Alu(5);
  return b.Build();
}

TEST(Observability, TimelineDeltasSumToFinalMetrics) {
  auto prog = SmallKernel();
  GpuSimulator gpu(TinyGpu(PolicyKind::kDlp), prog.get(), 4);
  TimelineSampler timeline(500);
  gpu.SetTimeline(&timeline);
  const Metrics final = gpu.Run();
  ASSERT_EQ(final.completed, 1u);
  ASSERT_GE(timeline.samples().size(), 2u);

  for (const MetricsField& f : MetricsFields()) {
    std::uint64_t sum = 0;
    for (const TimelineSample& s : timeline.samples()) {
      sum += s.delta.*(f.member);
    }
    EXPECT_EQ(sum, final.*(f.member)) << f.name;
  }
  // The last sample's cumulative block is the final Metrics verbatim.
  EXPECT_EQ(timeline.samples().back().cumulative.ToText(), final.ToText());
}

TEST(Observability, AttachingTracingDoesNotPerturbResults) {
  auto prog = SmallKernel();
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    SCOPED_TRACE(ToString(policy));
    GpuSimulator plain(TinyGpu(policy), prog.get(), 4);
    GpuSimulator traced(TinyGpu(policy), prog.get(), 4);
    TraceSink sink(1u << 16);
    TimelineSampler timeline(250);
    traced.SetTraceSink(&sink);
    traced.SetTimeline(&timeline);
    const Metrics mp = plain.Run();
    const Metrics mt = traced.Run();
    // Bit-identical simulation: tracing is observation only.
    EXPECT_EQ(mp.ToText(), mt.ToText());
  }
}

TEST(Observability, UntracedRunEmitsNothing) {
  auto prog = SmallKernel();
  GpuSimulator gpu(TinyGpu(PolicyKind::kDlp), prog.get(), 4);
  const Metrics m = gpu.Run();  // no sink attached
  ASSERT_EQ(m.completed, 1u);
  // Attach a sink only now: it must still be empty afterwards.
  TraceSink sink(16);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.total_emitted(), 0u);
}

TEST(Observability, DlpRunEmitsPolicyEvents) {
  // A reuse pattern that exercises protection: VTA hits drive PD up,
  // protected sets force bypasses, sample windows recompute the PDPT.
  ProgramBuilder b(120);
  b.LoadIndirect(8192, 0.0, 0x11)
      .LoadIndirect(8192, 0.0, 0x12)
      .LoadIndirect(8192, 0.0, 0x13)
      .LoadIndirect(8192, 0.0, 0x14)
      .LoadIndirect(8192, 0.0, 0x15)
      .LoadPrivate(1)
      .StoreStream()
      .Alu(30);
  auto prog = b.Build();

  GpuSimulator gpu(TinyGpu(PolicyKind::kDlp), prog.get(), 32);
  TraceSink sink(1u << 20);
  gpu.SetTraceSink(&sink);
  const Metrics m = gpu.Run();
  ASSERT_EQ(m.completed, 1u);

  EXPECT_GT(sink.CountKind(TraceEventKind::kAccess), 0u);
  EXPECT_GT(sink.CountKind(TraceEventKind::kEviction), 0u);
  EXPECT_GT(sink.CountKind(TraceEventKind::kFill), 0u);
  EXPECT_GT(sink.CountKind(TraceEventKind::kVtaHit), 0u);
  EXPECT_GT(sink.CountKind(TraceEventKind::kPdSample), 0u);
  const std::size_t bypass_events = sink.CountKind(TraceEventKind::kBypass);
  EXPECT_GT(bypass_events, 0u);
  // Without drops, bypass events correspond 1:1 to counted bypasses.
  if (sink.dropped() == 0) {
    EXPECT_EQ(bypass_events, m.l1d_bypasses);
  }

  // Every event's cycle stamp is within the run and nondecreasing.
  Cycle prev = 0;
  for (const TraceEvent& e : sink.InOrder()) {
    EXPECT_GE(e.cycle, prev);
    EXPECT_LE(e.cycle, m.core_cycles + 1);
    prev = e.cycle;
  }
}

TEST(Observability, PerSmAttributionCoversAllCores) {
  auto prog = SmallKernel();
  const SimConfig cfg = TinyGpu(PolicyKind::kDlp);
  GpuSimulator gpu(cfg, prog.get(), 4);
  TraceSink sink(1u << 20);
  gpu.SetTraceSink(&sink);
  ASSERT_EQ(gpu.Run().completed, 1u);

  std::vector<std::uint64_t> per_sm(cfg.num_cores, 0);
  for (const TraceEvent& e : sink.InOrder()) {
    ASSERT_LT(e.sm, cfg.num_cores);
    ++per_sm[e.sm];
  }
  for (std::uint32_t sm = 0; sm < cfg.num_cores; ++sm) {
    EXPECT_GT(per_sm[sm], 0u) << "SM" << sm << " emitted no events";
  }
}

}  // namespace
}  // namespace dlpsim
