// Regression tests for exporter string handling: hostile app/config
// names (quotes, backslashes, newlines, commas) must survive the JSON
// report as parseable, exactly round-tripped strings. Guards the audit
// documented in obs/exporters.h.
#include "obs/exporters.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.h"

namespace dlpsim {
namespace {

TEST(ExportersHostile, JsonReportRoundTripsHostileIdentity) {
  RunReportInfo info;
  info.app = "BF\"S\\evil\nname";
  info.config = "dlp,with\ttabs\"";
  info.scale = 0.25;

  const SimConfig cfg = SimConfig::Baseline16KB();
  Metrics metrics;
  metrics.l1d_accesses = 42;

  std::ostringstream os;
  WriteJsonReport(os, info, cfg, metrics);

  bool ok = false;
  const JsonValue doc = ParseJson(os.str(), &ok);
  ASSERT_TRUE(ok) << os.str();
  EXPECT_EQ(doc.Find("app")->string, info.app);
  EXPECT_EQ(doc.Find("config")->string, info.config);
  EXPECT_EQ(doc.Find("metrics")->U64("l1d_accesses"), 42u);
}

TEST(ExportersHostile, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  // Literal splicing: "\x01b" would parse as hex 0x1b.
  EXPECT_EQ(JsonEscape(std::string("nul\x01" "byte")), "nul\\u0001byte");
}

}  // namespace
}  // namespace dlpsim
