// The executor's core guarantee: running an experiment grid on N worker
// threads produces byte-identical results to the serial path, for any N.
// Every simulation is isolated (no shared mutable state), so the only
// way this can break is a real concurrency bug -- which is exactly what
// the test exists to catch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/run_grid.h"
#include "harness.h"

namespace dlpsim::bench {
namespace {

// Small but non-trivial grid: one cache-sufficient and one
// cache-insufficient app, baseline and the full DLP policy.
const std::vector<std::string> kApps = {"HS", "SRK"};
const std::vector<std::string> kConfigs = {"base", "dlp"};
constexpr double kScale = 0.02;

std::string CellText(const RunResult& r) {
  return r.metrics.ToText() + "---\n" + r.profile.ToText();
}

TEST(Determinism, ParallelGridMatchesSerialByteForByte) {
  const std::vector<exec::Job> grid = exec::Grid(kApps, kConfigs);

  // Serial reference: inline on this thread, no pool.
  std::vector<std::string> serial;
  for (const exec::Job& j : grid) {
    serial.push_back(CellText(SimulateUncached(j.app, j.config, kScale)));
  }

  // Same grid on 8 workers (more threads than cells and than most CI
  // hosts have cores, so real interleaving happens even on one core).
  const auto parallel = exec::RunJobs(
      grid,
      [](const exec::Job& j) {
        return CellText(SimulateUncached(j.app, j.config, kScale));
      },
      8);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i])
        << grid[i].app << "/" << grid[i].config;
  }
}

TEST(Determinism, RepeatedSimulationIsStable) {
  const std::string a = CellText(SimulateUncached("HS", "dlp", kScale));
  const std::string b = CellText(SimulateUncached("HS", "dlp", kScale));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dlpsim::bench
