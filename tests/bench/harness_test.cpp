#include "harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace dlpsim::bench {
namespace {

TEST(Harness, ConfigNamesResolve) {
  for (const std::string& name : ConfigNames()) {
    const SimConfig cfg = ConfigFor(name);
    EXPECT_EQ(cfg.num_cores, 16u) << name;
  }
  EXPECT_THROW(ConfigFor("bogus"), std::out_of_range);
}

TEST(Harness, ConfigSemantics) {
  EXPECT_EQ(ConfigFor("base").l1d.policy, PolicyKind::kBaseline);
  EXPECT_EQ(ConfigFor("sb").l1d.policy, PolicyKind::kStallBypass);
  EXPECT_EQ(ConfigFor("gp").l1d.policy, PolicyKind::kGlobalProtection);
  EXPECT_EQ(ConfigFor("dlp").l1d.policy, PolicyKind::kDlp);
  EXPECT_EQ(ConfigFor("32kb").l1d.geom.ways, 8u);
  EXPECT_EQ(ConfigFor("64kb").l1d.geom.ways, 16u);
}

TEST(Harness, ProfileResultRoundTrip) {
  ProfileResult r;
  r.global.buckets = {1, 2, 3, 4};
  r.reuse_accesses = 100;
  r.reuse_misses = 40;
  r.compulsory = 7;
  RddHistogram h;
  h.buckets = {5, 6, 7, 8};
  r.per_pc[42] = h;
  r.per_pc[7] = h;

  bool ok = false;
  const ProfileResult back = ProfileResult::FromText(r.ToText(), &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back.ToText(), r.ToText());
  EXPECT_EQ(back.global.buckets[3], 4u);
  EXPECT_EQ(back.per_pc.size(), 2u);
  EXPECT_EQ(back.per_pc.at(42).buckets[0], 5u);
  EXPECT_DOUBLE_EQ(back.reuse_miss_rate(), 0.4);
}

TEST(Harness, ProfileFromGarbageFails) {
  bool ok = true;
  ProfileResult::FromText("nope", &ok);
  EXPECT_FALSE(ok);
}

TEST(Harness, NormalizeGuardsZero) {
  EXPECT_DOUBLE_EQ(Normalize(5.0, 2.0), 2.5);
  EXPECT_DOUBLE_EQ(Normalize(5.0, 0.0), 0.0);
}

TEST(Harness, ScaleDefaultsToOne) {
  // (Unless the environment overrides it -- accept any positive value.)
  EXPECT_GT(Scale(), 0.0);
}


TEST(Harness, GridSurvivesFailingCellAndReportsIt) {
  // DLPSIM_NOCACHE so the bogus cell never touches the on-disk cache and
  // the good cells are freshly simulated (cheap at this scale).
  ASSERT_EQ(::setenv("DLPSIM_NOCACHE", "1", 1), 0);
  const std::size_t failed_before = FailedCells();
  const auto timing_failed_before = Timing().FailedCells();

  // "nope" is not a config name: ConfigFor throws, the cell fails after
  // its retries, and the sibling cells still finish.
  const auto results = RunGrid({"HS"}, {"base", "nope"}, /*scale=*/0.01, 2);
  ::unsetenv("DLPSIM_NOCACHE");

  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].metrics.core_cycles, 0u);   // healthy sibling ran
  EXPECT_EQ(results[1].metrics.core_cycles, 0u);   // failed slot zeroed
  EXPECT_EQ(FailedCells(), failed_before + 1);
  EXPECT_EQ(ExitStatus(), 1);

  // The failure is recorded as data in the timing log.
  ASSERT_EQ(Timing().FailedCells(), timing_failed_before + 1);
  bool found = false;
  for (const exec::TimingCell& c : Timing().cells()) {
    if (c.failed && c.config == "nope") {
      found = true;
      EXPECT_GE(c.attempts, 1);
      EXPECT_NE(c.error.find("unknown config"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Harness, FaultSpecParseFailureIsATypedCellError) {
  ASSERT_EQ(::setenv("DLPSIM_FAULTS", "kinds=bogus", 1), 0);
  EXPECT_THROW(SimulateUncached("HS", "base", 0.01), std::invalid_argument);
  ::unsetenv("DLPSIM_FAULTS");
}

TEST(Harness, FaultedRunCompletesAndSkipsTheCache) {
  // A faulted run must not read or write the shared result cache; it
  // still produces finite metrics (graceful degradation end to end).
  ASSERT_EQ(::setenv("DLPSIM_FAULTS", "seed=3,count=4,horizon=40000,stall=200",
                     1), 0);
  const auto artifact_dir =
      std::filesystem::temp_directory_path() / "dlpsim_fault_artifacts";
  ASSERT_EQ(::setenv("DLPSIM_TIMING_DIR", artifact_dir.string().c_str(), 1),
            0);
  const RunResult r = SimulateUncached("HS", "base", 0.01);
  ::unsetenv("DLPSIM_FAULTS");
  ::unsetenv("DLPSIM_TIMING_DIR");
  // The applied fault plan is exported as an artifact.
  EXPECT_TRUE(
      std::filesystem::exists(artifact_dir / "HS_base_faults.json"));
  std::filesystem::remove_all(artifact_dir);
  EXPECT_GT(r.metrics.core_cycles, 0u);
  EXPECT_EQ(r.metrics.completed, 1u);
}

}  // namespace
}  // namespace dlpsim::bench
