#include "harness.h"

#include <gtest/gtest.h>

namespace dlpsim::bench {
namespace {

TEST(Harness, ConfigNamesResolve) {
  for (const std::string& name : ConfigNames()) {
    const SimConfig cfg = ConfigFor(name);
    EXPECT_EQ(cfg.num_cores, 16u) << name;
  }
  EXPECT_THROW(ConfigFor("bogus"), std::out_of_range);
}

TEST(Harness, ConfigSemantics) {
  EXPECT_EQ(ConfigFor("base").l1d.policy, PolicyKind::kBaseline);
  EXPECT_EQ(ConfigFor("sb").l1d.policy, PolicyKind::kStallBypass);
  EXPECT_EQ(ConfigFor("gp").l1d.policy, PolicyKind::kGlobalProtection);
  EXPECT_EQ(ConfigFor("dlp").l1d.policy, PolicyKind::kDlp);
  EXPECT_EQ(ConfigFor("32kb").l1d.geom.ways, 8u);
  EXPECT_EQ(ConfigFor("64kb").l1d.geom.ways, 16u);
}

TEST(Harness, ProfileResultRoundTrip) {
  ProfileResult r;
  r.global.buckets = {1, 2, 3, 4};
  r.reuse_accesses = 100;
  r.reuse_misses = 40;
  r.compulsory = 7;
  RddHistogram h;
  h.buckets = {5, 6, 7, 8};
  r.per_pc[42] = h;
  r.per_pc[7] = h;

  bool ok = false;
  const ProfileResult back = ProfileResult::FromText(r.ToText(), &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back.ToText(), r.ToText());
  EXPECT_EQ(back.global.buckets[3], 4u);
  EXPECT_EQ(back.per_pc.size(), 2u);
  EXPECT_EQ(back.per_pc.at(42).buckets[0], 5u);
  EXPECT_DOUBLE_EQ(back.reuse_miss_rate(), 0.4);
}

TEST(Harness, ProfileFromGarbageFails) {
  bool ok = true;
  ProfileResult::FromText("nope", &ok);
  EXPECT_FALSE(ok);
}

TEST(Harness, NormalizeGuardsZero) {
  EXPECT_DOUBLE_EQ(Normalize(5.0, 2.0), 2.5);
  EXPECT_DOUBLE_EQ(Normalize(5.0, 0.0), 0.0);
}

TEST(Harness, ScaleDefaultsToOne) {
  // (Unless the environment overrides it -- accept any positive value.)
  EXPECT_GT(Scale(), 0.0);
}

}  // namespace
}  // namespace dlpsim::bench
