// Registry-level determinism and conservation:
//
//  1. A metrics dump produced by the same simulation grid must be
//     byte-identical at DLPSIM_JOBS=1 and DLPSIM_JOBS=8 (the registry's
//     core guarantee: integer-only values, commutative shard merges,
//     sorted exposition, jobs_dispatched counted in ParallelMap).
//  2. The registry's subsystem counters must reconcile exactly with the
//     Metrics block the simulator returns for the same run -- the two
//     accounting systems watch the same events and may never drift.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/run_grid.h"
#include "harness.h"
#include "obs/metrics.h"

namespace dlpsim::bench {
namespace {

constexpr double kScale = 0.02;

std::string GlobalMetricsText() {
  std::ostringstream os;
  obs::Registry::Global().WriteText(os);
  return os.str();
}

/// Simulates the pinned grid through the parallel executor (bypassing the
/// harness memo and disk cache, so every cell really simulates) and
/// returns the resulting global-registry dump.
std::string DumpAfterGrid(std::size_t jobs) {
  obs::Registry::Global().Reset();
  const std::vector<exec::Job> grid =
      exec::Grid({"BFS", "BP"}, {"base", "dlp"});
  exec::RunJobs(
      grid,
      [](const exec::Job& j) {
        return SimulateUncached(j.app, j.config, kScale);
      },
      jobs);
  return GlobalMetricsText();
}

TEST(MetricsDeterminism, DumpByteIdenticalAcrossJobCounts) {
  const std::string serial = DumpAfterGrid(1);
  const std::string parallel = DumpAfterGrid(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // The dump is not trivially empty: the grid counted real work.
  EXPECT_NE(serial.find("dlpsim_cache_accesses"), std::string::npos);
  EXPECT_NE(serial.find("dlpsim_exec_jobs_dispatched"), std::string::npos);
  // Same grid again at yet another job count: still identical.
  EXPECT_EQ(serial, DumpAfterGrid(3));
}

TEST(MetricsConservation, RegistryMatchesMetricsBlock) {
  obs::Registry::Global().Reset();
  const RunResult r = SimulateUncached("BFS", "dlp", kScale);
  ASSERT_GT(r.metrics.l1d_accesses, 0u);

  obs::Registry& reg = obs::Registry::Global();
  EXPECT_EQ(reg.GetCounter("cache", "accesses")->Value(),
            r.metrics.l1d_accesses);
  EXPECT_EQ(reg.GetCounter("cache", "fills")->Value(), r.metrics.l1d_fills);
  EXPECT_EQ(reg.GetCounter("mem", "dram_reads")->Value(),
            r.metrics.dram_reads);
  EXPECT_EQ(reg.GetCounter("mem", "dram_writes")->Value(),
            r.metrics.dram_writes);

  // The MSHR-occupancy histogram observes exactly once per issued miss.
  const std::uint64_t bounds[] = {0, 1, 2, 4, 8, 16, 32};
  EXPECT_EQ(reg.GetHistogram("cache", "mshr_occupancy", bounds)->Count(),
            r.metrics.l1d_misses_issued);

  // Occupancy gauges read zero at this quiescent point.
  EXPECT_EQ(reg.GetGauge("exec", "queue_depth")->Value(), 0);
  EXPECT_EQ(reg.GetGauge("exec", "jobs_inflight")->Value(), 0);
}

TEST(MetricsConservation, TwoRunsCountTwice) {
  obs::Registry::Global().Reset();
  const RunResult r = SimulateUncached("HS", "base", kScale);
  SimulateUncached("HS", "base", kScale);
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("cache", "accesses")->Value(),
      2 * r.metrics.l1d_accesses);
}

}  // namespace
}  // namespace dlpsim::bench
