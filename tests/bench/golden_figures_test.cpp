// Golden-figure regression: simulates the fig10/fig12 evaluation grid
// (every registered app under base/sb/gp/dlp/32kb) at a fixed scale and
// compares the counters that determine the published metrics against
// JSON snapshots recorded in tests/golden/.
//
// The simulator is deterministic and schedule-independent, so the
// comparison tolerance is explicit and tiny: any counter drifting by
// more than 1e-9 relative is a behaviour change that must either be
// fixed or consciously re-recorded with
//
//     DLPSIM_GOLDEN_UPDATE=1 ./tests/test_golden
//
// which rewrites the snapshot in the source tree (commit the diff).
// On failure the test prints a per-cell readable diff including the
// derived IPC / hit-rate movement.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "exec/run_grid.h"
#include "harness.h"
#include "verify/golden.h"

#ifndef DLPSIM_GOLDEN_DIR
#error "DLPSIM_GOLDEN_DIR must point at the source tests/golden directory"
#endif

namespace dlpsim::bench {
namespace {

constexpr double kScale = 0.02;  // fixed: snapshots ignore DLPSIM_SCALE
constexpr double kRelTol = 1e-9;

const std::vector<std::string> kConfigs = {"base", "sb", "gp", "dlp", "32kb"};

std::string GoldenPath() {
  return std::string(DLPSIM_GOLDEN_DIR) + "/figures_scale002.json";
}

bool UpdateRequested() {
  const char* env = std::getenv("DLPSIM_GOLDEN_UPDATE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

verify::GoldenSnapshot CaptureCurrent() {
  const std::vector<std::string> apps = AllAppAbbrs();
  const std::vector<exec::Job> grid = exec::Grid(apps, kConfigs);
  const auto results = exec::RunJobs(grid, [](const exec::Job& j) {
    return SimulateUncached(j.app, j.config, kScale);
  });

  verify::GoldenSnapshot snap;
  snap.scale = kScale;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    snap.entries.push_back(verify::MakeGoldenEntry(
        grid[i].app, grid[i].config, results[i].metrics));
  }
  return snap;
}

TEST(GoldenFigures, Fig10AndFig12GridMatchesSnapshot) {
  const std::string path = GoldenPath();

  if (UpdateRequested()) {
    const verify::GoldenSnapshot current = CaptureCurrent();
    std::string error;
    ASSERT_TRUE(verify::SaveGoldenFile(path, current, &error)) << error;
    GTEST_SKIP() << "golden snapshot re-recorded at " << path
                 << " (" << current.entries.size() << " cells); commit it";
  }

  verify::GoldenSnapshot want;
  std::string error;
  ASSERT_TRUE(verify::LoadGoldenFile(path, &want, &error))
      << error << "\nNo snapshot? Record one with DLPSIM_GOLDEN_UPDATE=1 "
      << "./tests/test_golden";
  ASSERT_FALSE(want.entries.empty());
  EXPECT_DOUBLE_EQ(want.scale, kScale);

  const verify::GoldenSnapshot got = CaptureCurrent();
  const std::string diff = verify::DiffGolden(want, got, kRelTol);
  EXPECT_TRUE(diff.empty())
      << "golden-figure regression (tolerance " << kRelTol << " relative):\n"
      << diff
      << "If this change is intentional, re-record with "
      << "DLPSIM_GOLDEN_UPDATE=1 ./tests/test_golden and commit the diff.";
}

TEST(GoldenFigures, SnapshotCoversTheFullGrid) {
  if (UpdateRequested()) GTEST_SKIP() << "update mode";
  verify::GoldenSnapshot want;
  std::string error;
  ASSERT_TRUE(verify::LoadGoldenFile(GoldenPath(), &want, &error)) << error;
  const std::size_t expected = AllAppAbbrs().size() * kConfigs.size();
  EXPECT_EQ(want.entries.size(), expected);
}

}  // namespace
}  // namespace dlpsim::bench
