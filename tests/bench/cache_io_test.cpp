#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness.h"

namespace dlpsim::bench {
namespace {

namespace fs = std::filesystem;

RunResult SampleResult() {
  RunResult r;
  r.metrics.core_cycles = 1234;
  r.metrics.committed_thread_insns = 99;
  r.metrics.l1d_load_hits = 42;
  r.profile.global.buckets = {1, 2, 3, 4};
  r.profile.reuse_accesses = 10;
  r.profile.reuse_misses = 5;
  r.profile.per_pc[7].buckets = {9, 8, 7, 6};
  return r;
}

class CacheIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "dlpsim_cache_io";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CacheIoTest, StoreLoadRoundTrip) {
  const fs::path path = dir_ / "entry.txt";
  const RunResult r = SampleResult();
  StoreCacheFile(path, r);
  ASSERT_TRUE(fs::exists(path));

  RunResult back;
  ASSERT_TRUE(LoadCacheFile(path, &back));
  EXPECT_EQ(back.metrics.ToText(), r.metrics.ToText());
  EXPECT_EQ(back.profile.ToText(), r.profile.ToText());
}

TEST_F(CacheIoTest, StoreLeavesNoTempFiles) {
  const fs::path path = dir_ / "entry.txt";
  StoreCacheFile(path, SampleResult());
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(CacheIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadCacheFile(dir_ / "nope.txt", nullptr));
}

TEST_F(CacheIoTest, TruncatedEntryRejected) {
  const fs::path path = dir_ / "entry.txt";
  StoreCacheFile(path, SampleResult());

  // Simulate a writer killed mid-write: chop the file anywhere. No
  // truncation point may yield a loadable entry, because every complete
  // entry ends with the footer line.
  std::string full;
  {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    full = buf.str();
  }
  for (std::size_t len = 0; len < full.size(); len += 7) {
    std::ofstream(path, std::ios::trunc) << full.substr(0, len);
    EXPECT_FALSE(LoadCacheFile(path, nullptr)) << "truncated at " << len;
  }
}

TEST_F(CacheIoTest, GarbageWithFooterRejected) {
  const fs::path path = dir_ / "entry.txt";
  std::ofstream(path) << "not a metrics block\n---\nnot a profile\n"
                      << "#complete\n";
  EXPECT_FALSE(LoadCacheFile(path, nullptr));
}

TEST_F(CacheIoTest, PathIsScaleAware) {
  const fs::path a = CachePathFor("SRK", "base", 1.0);
  const fs::path b = CachePathFor("SRK", "base", 0.5);
  const fs::path c = CachePathFor("SRK", "dlp", 1.0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dlpsim::bench
